// Package model assembles the paper's printability predictor (§IV, Fig. 5):
// a ResNet-style regression CNN that maps a grayscale decomposition image to
// the z-scored Eq. 9 printability score, plus training, persistence, and the
// score bookkeeping itself.
//
// The paper trains ResNet-18 on 224x224 inputs on a GPU. The paper-faithful
// architecture is constructible here (ResNet18Config), but the experiments
// default to a width- and resolution-reduced variant (TinyConfig) that a CPU
// can train in minutes; the predictor only has to rank a handful of
// candidates per layout. See DESIGN.md, substitution table row 2.
package model

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"math"
	"math/rand"

	"ldmo/internal/artifact"
	"ldmo/internal/grid"
	"ldmo/internal/nn"
	"ldmo/internal/par"
	"ldmo/internal/simclock"
	"ldmo/internal/tensor"
)

// ScoreWeights are the Eq. 9 coefficients:
// score = Alpha*L2 + Beta*EPE# + Gamma*Violation#.
type ScoreWeights struct {
	Alpha, Beta, Gamma float64
}

// DefaultScoreWeights returns the paper's alpha=1, beta=3500, gamma=8000.
func DefaultScoreWeights() ScoreWeights { return ScoreWeights{Alpha: 1, Beta: 3500, Gamma: 8000} }

// Score evaluates Eq. 9.
func (w ScoreWeights) Score(l2 float64, epeViolations, printViolations int) float64 {
	return w.Alpha*l2 + w.Beta*float64(epeViolations) + w.Gamma*float64(printViolations)
}

// ScoreNorm is the z-score normalization fitted to the training labels
// ("z-score regularization is applied to make the score comparable").
type ScoreNorm struct {
	Mean, Std float64
}

// FitScoreNorm estimates mean and standard deviation from raw scores. A
// degenerate (constant) label set gets Std 1 so normalization stays finite.
func FitScoreNorm(scores []float64) ScoreNorm {
	if len(scores) == 0 {
		return ScoreNorm{Mean: 0, Std: 1}
	}
	var mean float64
	for _, s := range scores {
		mean += s
	}
	mean /= float64(len(scores))
	var varv float64
	for _, s := range scores {
		d := s - mean
		varv += d * d
	}
	varv /= float64(len(scores))
	std := math.Sqrt(varv)
	if std < 1e-12 {
		std = 1
	}
	return ScoreNorm{Mean: mean, Std: std}
}

// Normalize maps a raw score to z-space.
func (n ScoreNorm) Normalize(s float64) float64 { return (s - n.Mean) / n.Std }

// Denormalize maps a z-space prediction back to raw score units.
func (n ScoreNorm) Denormalize(z float64) float64 { return z*n.Std + n.Mean }

// Config describes the predictor architecture.
type Config struct {
	// InputSize is the square input image edge in pixels.
	InputSize int
	// StemChannels is the output width of the 7x7 stem convolution.
	StemChannels int
	// StageBlocks is the residual block count per stage (ResNet-18: 2,2,2,2).
	StageBlocks [4]int
	// StageChannels is the channel width per stage.
	StageChannels [4]int
	// HiddenDim is the penultimate fully connected width (paper: 1000).
	HiddenDim int
	// Seed drives weight initialization.
	Seed int64
}

// ResNet18Config is the paper-faithful architecture: 224x224 inputs, the
// 64/128/256/512 stage widths of ResNet-18 and the 1000-d penultimate layer
// of Fig. 5.
func ResNet18Config() Config {
	return Config{
		InputSize:     224,
		StemChannels:  64,
		StageBlocks:   [4]int{2, 2, 2, 2},
		StageChannels: [4]int{64, 128, 256, 512},
		HiddenDim:     1000,
		Seed:          1,
	}
}

// TinyConfig is the CPU-scale variant the experiments run: identical
// topology (7x7 stem, maxpool, four residual stages, avgpool, two FC
// layers), reduced to 64x64 inputs and 8..48 channels.
func TinyConfig() Config {
	return Config{
		InputSize:     64,
		StemChannels:  8,
		StageBlocks:   [4]int{1, 1, 1, 1},
		StageChannels: [4]int{8, 16, 32, 48},
		HiddenDim:     64,
		Seed:          1,
	}
}

// Validate reports the first problem with c, or nil.
func (c Config) Validate() error {
	if c.InputSize < 16 {
		return fmt.Errorf("model: input size %d too small", c.InputSize)
	}
	if c.StemChannels <= 0 || c.HiddenDim <= 0 {
		return fmt.Errorf("model: non-positive widths in %+v", c)
	}
	for i := range c.StageBlocks {
		if c.StageBlocks[i] <= 0 || c.StageChannels[i] <= 0 {
			return fmt.Errorf("model: stage %d has no blocks or channels", i)
		}
	}
	return nil
}

// Predictor is the trained printability estimator. A Predictor is not safe
// for concurrent use, but PredictBatch parallelizes internally: the batch is
// sharded over worker lanes, each lane forwarding through its own frozen
// replica of the network (nn layers are single-goroutine). Every sample's
// forward pass is independent of its batchmates (inference-mode batch norm
// uses running statistics), so sharded scores are bit-identical to the
// single-batch ones.
//
// Inference runs through nn.Network.Freeze() replicas — deep copies with
// batch norm folded into the preceding convolutions — built lazily once per
// weight generation and cached together with the lane pool, so steady-state
// PredictBatch calls rebuild nothing.
type Predictor struct {
	Cfg   Config
	Net   *nn.Network
	Norm  ScoreNorm
	clock *simclock.Clock

	workers int              // batch-sharding lanes; 0 = par.Workers()
	frozen  []*nn.Network    // lazily built folded per-lane inference replicas
	pool    *par.Pool        // cached lane pool, rebuilt when workers changes
	inx     []*tensor.Tensor // per-lane cached input batch tensors
}

// New builds an untrained predictor for the given architecture.
func New(cfg Config) (*Predictor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	layers := []nn.Layer{
		nn.NewConv2D(rng, 1, cfg.StemChannels, 7, 2, 3, false),
		nn.NewBatchNorm2D(cfg.StemChannels),
		nn.NewReLU(),
		nn.NewMaxPool2D(3, 2, 1),
	}
	inC := cfg.StemChannels
	for stage := 0; stage < 4; stage++ {
		outC := cfg.StageChannels[stage]
		for b := 0; b < cfg.StageBlocks[stage]; b++ {
			stride := 1
			if b == 0 && stage > 0 {
				stride = 2
			}
			layers = append(layers, nn.NewBasicBlock(rng, inC, outC, stride))
			inC = outC
		}
	}
	layers = append(layers,
		nn.NewGlobalAvgPool(),
		nn.NewLinear(rng, inC, cfg.HiddenDim),
		nn.NewReLU(),
		nn.NewLinear(rng, cfg.HiddenDim, 1),
	)
	return &Predictor{Cfg: cfg, Net: nn.NewNetwork(layers...), Norm: ScoreNorm{Std: 1}}, nil
}

// SetClock attaches deterministic cost accounting; each Predict call charges
// one CNN inference.
func (p *Predictor) SetClock(c *simclock.Clock) { p.clock = c }

// SetWorkers bounds PredictBatch's internal parallelism: n lanes score batch
// shards concurrently (0 selects par.Workers(), 1 forces the serial path).
func (p *Predictor) SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	p.workers = n
	// The frozen replicas stay valid (weights unchanged); only the lane
	// pool is sized by the worker count.
	p.pool = nil
}

// invalidateReplicas drops the folded inference replicas; called whenever
// the canonical parameters are about to change.
func (p *Predictor) invalidateReplicas() { p.frozen = nil }

// lanePool returns the cached worker pool, building it on first use after a
// SetWorkers change.
func (p *Predictor) lanePool() *par.Pool {
	if p.pool == nil {
		p.pool = par.NewPool(p.workers)
	}
	return p.pool
}

// frozenNets returns n folded inference replicas of the current weights,
// growing the cache on demand. Replica 0 serves the serial path too, so
// serial and sharded predictions run the identical folded network.
func (p *Predictor) frozenNets(n int) []*nn.Network {
	for len(p.frozen) < n {
		p.frozen = append(p.frozen, p.Net.Freeze())
	}
	return p.frozen[:n]
}

// imageToTensor packs grayscale images into a freshly allocated
// N x 1 x S x S batch, resampling to the configured input size when needed.
// Training uses it (each batch tensor lives across the NaN-retry loop);
// inference goes through the cached lane tensors below.
func (p *Predictor) imageToTensor(imgs []*grid.Grid) *tensor.Tensor {
	s := p.Cfg.InputSize
	x := tensor.New(len(imgs), 1, s, s)
	for i, g := range imgs {
		if g.W != s || g.H != s {
			g = g.Resample(s, s)
		}
		copy(x.Data[i*s*s:(i+1)*s*s], g.Data)
	}
	return x
}

// laneTensor packs imgs into lane's cached input tensor as an
// N x 1 x S x S batch, resampling to the configured input size when needed.
// The caller must have grown p.inx past lane already (lanes write disjoint
// slots concurrently; the slice header itself is never touched here).
func (p *Predictor) laneTensor(lane int, imgs []*grid.Grid) *tensor.Tensor {
	s := p.Cfg.InputSize
	x := tensor.Ensure(p.inx[lane], len(imgs), 1, s, s)
	p.inx[lane] = x
	for i, g := range imgs {
		if g.W != s || g.H != s {
			g = g.Resample(s, s)
		}
		copy(x.Data[i*s*s:(i+1)*s*s], g.Data)
	}
	return x
}

// Predict returns the normalized (z-space) printability score of one
// decomposition image; lower is better.
func (p *Predictor) Predict(img *grid.Grid) float64 {
	return p.PredictBatch([]*grid.Grid{img})[0]
}

// PredictBatch scores several images, sharding the batch across the
// configured worker lanes when it is large enough to pay for the fan-out.
func (p *Predictor) PredictBatch(imgs []*grid.Grid) []float64 {
	if len(imgs) == 0 {
		return nil
	}
	scores := make([]float64, len(imgs))
	p.PredictBatchInto(imgs, scores)
	return scores
}

// PredictBatchInto is PredictBatch writing into a caller-owned score slice
// (len(out) must equal len(imgs)). Once warm, a call at a previously seen
// batch size reuses the cached lane input tensors and the folded replicas,
// so the coalesced prediction stage of the pipelined flow adds no
// steady-state garbage beyond any needed input resampling.
//
// Scores are a per-sample function of each image alone — inference batch
// norm uses running statistics and the blocked GEMM reduction order is
// independent of batch composition — so any concatenation or split of
// batches returns bitwise-identical scores per image. The flow's coalescing
// across candidates and layouts relies on this invariance.
func (p *Predictor) PredictBatchInto(imgs []*grid.Grid, out []float64) {
	if len(imgs) == 0 {
		return
	}
	if len(out) != len(imgs) {
		panic(fmt.Sprintf("model: PredictBatchInto out length %d != batch %d", len(out), len(imgs)))
	}
	p.clock.Charge(simclock.CostCNNInference, len(imgs))
	pool := p.lanePool()
	lanes := min(pool.Size(), len(imgs))
	for len(p.inx) < lanes {
		p.inx = append(p.inx, nil)
	}
	if lanes > 1 {
		p.predictSharded(imgs, out, pool, p.frozenNets(lanes), lanes)
		return
	}
	x := p.laneTensor(0, imgs)
	o := p.frozenNets(1)[0].Forward(x, false)
	copy(out, o.Data)
}

// predictSharded splits imgs into lanes contiguous shards, forwards each
// through its lane's network replica, and assembles scores in input order.
func (p *Predictor) predictSharded(imgs []*grid.Grid, out []float64, pool *par.Pool, nets []*nn.Network, lanes int) {
	pool.Map(lanes, func(_, shard int) {
		lo := shard * len(imgs) / lanes
		hi := (shard + 1) * len(imgs) / lanes
		if lo == hi {
			return
		}
		x := p.laneTensor(shard, imgs[lo:hi])
		o := nets[shard].Forward(x, false)
		copy(out[lo:hi], o.Data)
	})
}

// Sealed-envelope identity of an exported predictor file.
const (
	predictorKind    = "predictor"
	predictorVersion = 1
)

// Persisted model types claim their gob type IDs at init, in a fixed order
// (after nn's, which this package imports), so sealed payload bytes are a
// pure function of the encoded state.
func init() {
	artifact.StabilizeGob(Config{}, ScoreNorm{}, trainCheckpoint{}, WarmConfig{}, WarmDataset{})
}

// Save writes architecture, normalization and weights to path inside a
// sealed artifact envelope, atomically. Load verifies the envelope, so a
// truncated or bit-rotted model file is reported instead of misdecoded.
func (p *Predictor) Save(path string) error {
	var buf bytes.Buffer
	if err := p.Write(&buf); err != nil {
		return err
	}
	return artifact.WriteFile(path, predictorKind, predictorVersion, buf.Bytes())
}

// Digest returns the provenance fingerprint of the current architecture,
// normalization and weights: the SHA-256 of the serialized checkpoint
// bytes. Any retraining changes it — the job service folds it into dedupe
// cache keys so a stale cached result is never served across a retrain.
func (p *Predictor) Digest() string {
	var buf bytes.Buffer
	if err := p.Write(&buf); err != nil {
		// Gob-encoding in-memory plain-data structs cannot fail; treat it
		// as the programming error it would be.
		panic(fmt.Sprintf("model: predictor digest: %v", err))
	}
	return artifact.Digest(buf.Bytes())
}

// Write streams the predictor to w.
func (p *Predictor) Write(w io.Writer) error {
	enc := gob.NewEncoder(w)
	if err := enc.Encode(p.Cfg); err != nil {
		return fmt.Errorf("model: encode config: %w", err)
	}
	if err := enc.Encode(p.Norm); err != nil {
		return fmt.Errorf("model: encode norm: %w", err)
	}
	return p.Net.EncodeParams(enc)
}

// Load reads a predictor previously written by Save, verifying the sealed
// envelope: corruption, version skew, and wrong-kind files surface as the
// typed artifact errors.
func Load(path string) (*Predictor, error) {
	payload, err := artifact.ReadFile(path, predictorKind, predictorVersion)
	if err != nil {
		return nil, err
	}
	return Read(bytes.NewReader(payload))
}

// Read streams a predictor from r.
func Read(r io.Reader) (*Predictor, error) {
	dec := gob.NewDecoder(r)
	var cfg Config
	if err := dec.Decode(&cfg); err != nil {
		return nil, fmt.Errorf("model: decode config: %w", err)
	}
	var norm ScoreNorm
	if err := dec.Decode(&norm); err != nil {
		return nil, fmt.Errorf("model: decode norm: %w", err)
	}
	p, err := New(cfg)
	if err != nil {
		return nil, err
	}
	p.Norm = norm
	if err := p.Net.DecodeParams(dec); err != nil {
		return nil, err
	}
	return p, nil
}
