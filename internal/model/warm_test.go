package model

import (
	"math"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"

	"ldmo/internal/geom"
	"ldmo/internal/grid"
)

// testWarmConfig is a small architecture that trains in test-milliseconds.
func testWarmConfig() WarmConfig {
	return WarmConfig{InputSize: 16, Channels: 4, Blocks: 2, Seed: 3}
}

// randomGrid fills a w x h grid with deterministic pseudo-random values in
// [0, 1].
func randomGrid(rng *rand.Rand, w, h int) *grid.Grid {
	g := grid.New(w, h, 8, geom.Point{})
	for i := range g.Data {
		g.Data[i] = rng.Float64()
	}
	return g
}

// warmTestDataset synthesizes n harvested pairs at the config's field size
// with a learnable structure: the "optimized" field is the cold mask pushed
// toward binary (a crude caricature of what ILT does).
func warmTestDataset(cfg WarmConfig, n int) *WarmDataset {
	rng := rand.New(rand.NewSource(11))
	s := cfg.InputSize
	ds := &WarmDataset{Size: s}
	sharpen := func(g *grid.Grid) *grid.Grid {
		o := grid.New(g.W, g.H, g.Res, g.Origin)
		for i, v := range g.Data {
			o.Data[i] = 1 / (1 + math.Exp(-8*(v-0.5)))
		}
		return o
	}
	for i := 0; i < n; i++ {
		c1 := randomGrid(rng, s, s)
		c2 := randomGrid(rng, s, s)
		ds.Pairs = append(ds.Pairs, WarmPair{Cold1: c1, Cold2: c2, Opt1: sharpen(c1), Opt2: sharpen(c2)})
	}
	return ds
}

func TestWarmStarterUntrainedStaysNearCold(t *testing.T) {
	ws, err := NewWarmStarter(testWarmConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	c1, c2 := randomGrid(rng, 32, 32), randomGrid(rng, 32, 32)
	w1 := make([]float64, 32*32)
	w2 := make([]float64, 32*32)
	if !ws.WarmMasksInto(c1, c2, w1, w2) {
		t.Fatal("WarmMasksInto returned false")
	}
	var dev float64
	for i := range w1 {
		if w1[i] < 0 || w1[i] > 1 || w2[i] < 0 || w2[i] > 1 {
			t.Fatalf("warm field out of [0,1] at %d: %g %g", i, w1[i], w2[i])
		}
		dev += math.Abs(w1[i]-c1.Data[i]) + math.Abs(w2[i]-c2.Data[i])
	}
	dev /= float64(2 * len(w1))
	// The residual head is initialized near zero, so an untrained surrogate
	// must roughly reproduce the cold start, not scramble it.
	if dev > 0.25 {
		t.Fatalf("untrained warm field deviates %.3f from cold on average", dev)
	}
}

func TestWarmStarterTrainReducesLoss(t *testing.T) {
	cfg := testWarmConfig()
	ws, err := NewWarmStarter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ds := warmTestDataset(cfg, 12)
	tc := DefaultWarmTrainConfig()
	tc.Epochs = 8
	hist, err := ws.Train(ds, tc)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != tc.Epochs {
		t.Fatalf("history length %d, want %d", len(hist), tc.Epochs)
	}
	if hist[len(hist)-1] >= hist[0] {
		t.Fatalf("training did not reduce loss: %.5f -> %.5f", hist[0], hist[len(hist)-1])
	}
}

func TestWarmStarterRoundTrip(t *testing.T) {
	cfg := testWarmConfig()
	ws, err := NewWarmStarter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ws.Train(warmTestDataset(cfg, 6), WarmTrainConfig{Epochs: 2, BatchSize: 4, LR: 1e-3, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "warm.gob")
	if err := ws.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadWarmStarter(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Digest() != ws.Digest() {
		t.Fatal("digest changed across save/load")
	}
	rng := rand.New(rand.NewSource(9))
	c1, c2 := randomGrid(rng, cfg.InputSize, cfg.InputSize), randomGrid(rng, cfg.InputSize, cfg.InputSize)
	n := cfg.InputSize * cfg.InputSize
	a1, a2 := make([]float64, n), make([]float64, n)
	b1, b2 := make([]float64, n), make([]float64, n)
	if !ws.WarmMasksInto(c1, c2, a1, a2) || !got.WarmMasksInto(c1, c2, b1, b2) {
		t.Fatal("WarmMasksInto returned false")
	}
	for i := range a1 {
		if a1[i] != b1[i] || a2[i] != b2[i] {
			t.Fatalf("loaded warm starter predicts differently at %d", i)
		}
	}
}

func TestWarmStarterDigestChangesOnTraining(t *testing.T) {
	cfg := testWarmConfig()
	ws, err := NewWarmStarter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	before := ws.Digest()
	if _, err := ws.Train(warmTestDataset(cfg, 6), WarmTrainConfig{Epochs: 1, BatchSize: 4, LR: 1e-3, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if ws.Digest() == before {
		t.Fatal("digest unchanged by training")
	}
}

func TestWarmDatasetRoundTripAndAugment(t *testing.T) {
	cfg := testWarmConfig()
	ds := warmTestDataset(cfg, 3)
	path := filepath.Join(t.TempDir(), "pairs.gob")
	if err := SaveWarmDataset(ds, path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadWarmDataset(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Size != ds.Size || got.Len() != ds.Len() {
		t.Fatalf("round trip: size %d len %d", got.Size, got.Len())
	}
	for i := range got.Pairs {
		for j := range got.Pairs[i].Cold1.Data {
			if got.Pairs[i].Cold1.Data[j] != ds.Pairs[i].Cold1.Data[j] ||
				got.Pairs[i].Opt2.Data[j] != ds.Pairs[i].Opt2.Data[j] {
				t.Fatalf("pair %d differs at %d", i, j)
			}
		}
	}
	aug := ds.Augmented()
	if aug.Len() != 8*ds.Len() {
		t.Fatalf("augmented length %d, want %d", aug.Len(), 8*ds.Len())
	}
}

func TestWarmMasksConcurrentMatchesSerial(t *testing.T) {
	cfg := testWarmConfig()
	ws, err := NewWarmStarter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	const lanes = 4
	type in struct{ c1, c2 *grid.Grid }
	ins := make([]in, lanes)
	want := make([][]float64, lanes)
	n := 24 * 24
	for i := range ins {
		ins[i] = in{randomGrid(rng, 24, 24), randomGrid(rng, 24, 24)}
		w1, w2 := make([]float64, n), make([]float64, n)
		if !ws.WarmMasksInto(ins[i].c1, ins[i].c2, w1, w2) {
			t.Fatal("serial WarmMasksInto returned false")
		}
		want[i] = append(w1, w2...)
	}
	var wg sync.WaitGroup
	errs := make([]string, lanes)
	for i := 0; i < lanes; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w1, w2 := make([]float64, n), make([]float64, n)
			if !ws.WarmMasksInto(ins[i].c1, ins[i].c2, w1, w2) {
				errs[i] = "returned false"
				return
			}
			got := append(w1, w2...)
			for j := range got {
				if got[j] != want[i][j] {
					errs[i] = "diverged from serial prediction"
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for i, e := range errs {
		if e != "" {
			t.Fatalf("lane %d: %s", i, e)
		}
	}
}

func TestWarmMasksIntoSteadyStateAllocs(t *testing.T) {
	cfg := testWarmConfig()
	ws, err := NewWarmStarter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(23))
	c1, c2 := randomGrid(rng, 32, 32), randomGrid(rng, 32, 32)
	n := 32 * 32
	w1, w2 := make([]float64, n), make([]float64, n)
	// Warm the caches: first call builds the folded replica and the layer
	// buffers.
	for i := 0; i < 2; i++ {
		if !ws.WarmMasksInto(c1, c2, w1, w2) {
			t.Fatal("WarmMasksInto returned false")
		}
	}
	allocs := testing.AllocsPerRun(10, func() {
		ws.WarmMasksInto(c1, c2, w1, w2)
	})
	if allocs != 0 {
		t.Fatalf("WarmMasksInto allocates %v objects per call at steady state, want 0", allocs)
	}
}
