package model

import (
	"sort"
	"testing"

	"ldmo/internal/grid"
	"ldmo/internal/tensor"
)

// engineTrajectory trains a fresh predictor for two epochs and scores the
// training images, all under whichever GEMM engine the environment selects.
type engineTrajectory struct {
	hist  []float64
	preds []float64
	order []int
}

func runEngineTrajectory(t *testing.T) engineTrajectory {
	t.Helper()
	p, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	ds := syntheticDataset(16, 5)
	tc := DefaultTrainConfig()
	tc.Epochs = 2
	tc.BatchSize = 8
	hist, err := p.Train(ds, tc)
	if err != nil {
		t.Fatal(err)
	}
	imgs := make([]*grid.Grid, ds.Len())
	for i := range imgs {
		imgs[i] = ds.Samples[i].Image
	}
	preds := p.PredictBatch(imgs)
	order := make([]int, len(preds))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return preds[order[a]] < preds[order[b]] })
	return engineTrajectory{hist: hist, preds: preds, order: order}
}

// TestGEMMEngineGoldenTrajectory is the engine-swap golden: the blocked
// (default) and naive GEMM engines produce bit-identical training loss
// trajectories and predictions, so every discrete flow decision ranked on
// those predictions — candidate selection included — is exactly unchanged.
func TestGEMMEngineGoldenTrajectory(t *testing.T) {
	var blocked, naive engineTrajectory
	t.Run("blocked", func(t *testing.T) {
		blocked = runEngineTrajectory(t)
	})
	t.Run("naive", func(t *testing.T) {
		t.Setenv(tensor.EnvGEMM, tensor.ModeNaive)
		naive = runEngineTrajectory(t)
	})
	for i := range blocked.hist {
		if blocked.hist[i] != naive.hist[i] {
			t.Fatalf("epoch %d loss diverged: %g (blocked) vs %g (naive)", i, blocked.hist[i], naive.hist[i])
		}
	}
	for i := range blocked.preds {
		if blocked.preds[i] != naive.preds[i] {
			t.Fatalf("prediction %d diverged: %g (blocked) vs %g (naive)", i, blocked.preds[i], naive.preds[i])
		}
	}
	for i := range blocked.order {
		if blocked.order[i] != naive.order[i] {
			t.Fatalf("score ranking diverged at position %d: %d vs %d", i, blocked.order[i], naive.order[i])
		}
	}
}

// TestPredictorCachesReplicasAndPool pins the steady-state inference
// contract: repeated PredictBatch calls reuse the folded replicas and the
// lane pool; SetWorkers rebuilds only the pool; weight invalidation drops
// the replicas so the next call re-folds fresh weights.
func TestPredictorCachesReplicasAndPool(t *testing.T) {
	p, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	p.SetWorkers(2)
	imgs := make([]*grid.Grid, 4)
	for i := range imgs {
		imgs[i] = syntheticDataset(1, int64(i)).Samples[0].Image
	}
	p.PredictBatch(imgs)
	pool, frozen := p.pool, p.frozenNets(1)[0]
	if pool == nil || frozen == nil {
		t.Fatal("first PredictBatch did not populate the caches")
	}
	p.PredictBatch(imgs)
	if p.pool != pool {
		t.Fatal("lane pool rebuilt on a steady-state call")
	}
	if p.frozenNets(1)[0] != frozen {
		t.Fatal("frozen replica rebuilt on a steady-state call")
	}
	p.SetWorkers(3)
	p.PredictBatch(imgs)
	if p.pool == pool {
		t.Fatal("SetWorkers did not rebuild the lane pool")
	}
	if p.frozenNets(1)[0] != frozen {
		t.Fatal("SetWorkers needlessly dropped the frozen replicas")
	}
	p.invalidateReplicas()
	p.PredictBatch(imgs)
	if p.frozenNets(1)[0] == frozen {
		t.Fatal("invalidation did not drop the frozen replicas")
	}
}
