package model

import (
	"context"
	"fmt"
	"io"
	"math"
	"math/rand"

	"ldmo/internal/faultinject"
	"ldmo/internal/grid"
	"ldmo/internal/nn"
	"ldmo/internal/runx"
	"ldmo/internal/tensor"
)

// Sample is one labeled training example: a grayscale decomposition image
// and its raw Eq. 9 score (normalization happens inside Train).
type Sample struct {
	Image *grid.Grid
	Score float64
}

// Dataset is a labeled sample collection.
type Dataset struct {
	Samples []Sample
}

// Add appends a sample.
func (d *Dataset) Add(img *grid.Grid, score float64) {
	d.Samples = append(d.Samples, Sample{Image: img, Score: score})
}

// Len returns the sample count.
func (d *Dataset) Len() int { return len(d.Samples) }

// Augmented returns a new dataset containing, for every sample, its eight
// dihedral transforms (four quarter-turn rotations of the image and of its
// mirror) with unchanged labels. The augmentation is exact, not heuristic:
// the optical kernels are isotropic and the EPE/L2 metrics are invariant
// under rotation and reflection of the whole tile, so a transformed
// decomposition image has exactly the same printability score.
func (d *Dataset) Augmented() *Dataset {
	out := &Dataset{Samples: make([]Sample, 0, 8*len(d.Samples))}
	for _, s := range d.Samples {
		img := s.Image
		mir := img.FlipH()
		for k := 0; k < 4; k++ {
			out.Samples = append(out.Samples,
				Sample{Image: img, Score: s.Score},
				Sample{Image: mir, Score: s.Score})
			if k < 3 {
				img = img.Rot90()
				mir = mir.Rot90()
			}
		}
	}
	return out
}

// TrainConfig controls predictor training.
type TrainConfig struct {
	Epochs    int
	BatchSize int
	LR        float64
	// DecayAt and DecayFactor implement a single-step learning-rate decay:
	// after DecayAt epochs the rate is multiplied by DecayFactor. Zero
	// values disable the decay.
	DecayAt     int
	DecayFactor float64
	Seed        int64
	// UseMSE switches the cost from the paper's MAE (Eq. 10) to MSE, the
	// ablation alternative.
	UseMSE bool
	// Log, when non-nil, receives per-epoch progress lines.
	Log io.Writer
	// Checkpoint, when non-empty, is a file that TrainCtx writes atomically
	// every CheckpointEvery epochs (weights, optimizer moments, loss
	// history) and resumes from when it already exists. Resumed training is
	// bit-identical to an uninterrupted run: the shuffle RNG is
	// fast-forwarded by replaying the completed epochs' permutations.
	Checkpoint string
	// CheckpointEvery is the epoch interval between checkpoint writes;
	// 0 means every epoch.
	CheckpointEvery int
}

// DefaultTrainConfig returns settings that converge on the reduced
// architecture within CPU-minutes.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{Epochs: 30, BatchSize: 16, LR: 1e-3, DecayAt: 20, DecayFactor: 0.3, Seed: 1}
}

// Train fits the predictor on the dataset: labels are z-scored (the fitted
// normalization is stored on the predictor), batches are shuffled per epoch,
// and the mean epoch loss history is returned. It is TrainCtx without
// cancellation.
func (p *Predictor) Train(ds *Dataset, tc TrainConfig) ([]float64, error) {
	return p.TrainCtx(context.Background(), ds, tc)
}

// TrainCtx is the hardened training loop. Cancellation is observed at batch
// granularity and returns the loss history so far together with the context
// error; with tc.Checkpoint set, the state at the last completed checkpoint
// interval is already on disk, and a subsequent TrainCtx call with the same
// dataset and config resumes there — producing weights and history
// bit-identical to an uninterrupted run (the shuffle RNG is fast-forwarded
// deterministically, the optimizer moments and decayed learning rate travel
// in the checkpoint, and the BatchNorm running stats ride along with the
// weights).
func (p *Predictor) TrainCtx(ctx context.Context, ds *Dataset, tc TrainConfig) ([]float64, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if ds.Len() == 0 {
		return nil, fmt.Errorf("model: empty training set")
	}
	if tc.Epochs <= 0 || tc.BatchSize <= 0 || tc.LR <= 0 {
		return nil, fmt.Errorf("model: invalid train config %+v", tc)
	}
	// Training rewrites the canonical weights; any cached inference
	// replicas are stale from here on.
	p.invalidateReplicas()
	raw := make([]float64, ds.Len())
	for i, s := range ds.Samples {
		raw[i] = s.Score
	}
	p.Norm = FitScoreNorm(raw)

	var loss nn.Loss = &nn.MAE{}
	if tc.UseMSE {
		loss = &nn.MSE{}
	}
	adam := nn.NewAdam(tc.LR)
	rng := rand.New(rand.NewSource(tc.Seed))
	history := make([]float64, 0, tc.Epochs)
	order := rng.Perm(ds.Len())
	startEpoch := 0

	if tc.Checkpoint != "" {
		cp, ok, err := loadTrainCheckpoint(tc.Checkpoint, p.Net, tc.Seed, ds.Len(), tc.Log)
		if err != nil {
			return nil, err
		}
		if ok {
			adam.SetState(cp.Adam)
			history = append(history, cp.History...)
			startEpoch = cp.Epoch
			// Fast-forward the shuffle RNG: rand.Rand is not serializable,
			// but the order slice after N epochs is a pure function of the
			// seed, so replaying the completed shuffles reproduces it.
			for e := 0; e < startEpoch; e++ {
				rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
			}
			if tc.Log != nil {
				fmt.Fprintf(tc.Log, "resuming from %s at epoch %d/%d\n", tc.Checkpoint, startEpoch, tc.Epochs)
			}
		}
	}

	every := tc.CheckpointEvery
	if every <= 0 {
		every = 1
	}
	// NaN guard state: params (with BatchNorm running stats) are snapshotted
	// before every batch, and a batch whose loss or gradient goes non-finite
	// is rolled back and retried with a halved learning rate — bounded, so a
	// genuinely divergent run still fails, but typed and clean.
	params := p.Net.Params()
	snap := nn.NewParamSnapshot(params)
	const maxNaNRetries = 3
	batchIdx := 0
	for epoch := startEpoch; epoch < tc.Epochs; epoch++ {
		if tc.DecayAt > 0 && tc.DecayFactor > 0 && epoch == tc.DecayAt {
			adam.LR *= tc.DecayFactor
		}
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		epochLoss := 0.0
		batches := 0
		for start := 0; start < len(order); start += tc.BatchSize {
			// A cancelled epoch is abandoned wholesale — resume replays it
			// from the last epoch-boundary checkpoint, keeping the
			// trajectory identical.
			if err := ctx.Err(); err != nil {
				return history, fmt.Errorf("model: training interrupted in epoch %d: %w", epoch+1, err)
			}
			end := min(start+tc.BatchSize, len(order))
			idx := order[start:end]
			imgs := make([]*grid.Grid, len(idx))
			target := tensor.New(len(idx), 1, 1, 1)
			for i, j := range idx {
				imgs[i] = ds.Samples[j].Image
				target.Data[i] = p.Norm.Normalize(ds.Samples[j].Score)
			}
			x := p.imageToTensor(imgs)
			var l float64
			for retry := 0; ; retry++ {
				snap.Save(params)
				pred := p.Net.Forward(x, true)
				var grad *tensor.Tensor
				l, grad = loss.Eval(pred, target)
				nn.ZeroGrads(params)
				p.Net.Backward(grad)
				if faultinject.FireAt(faultinject.TrainNaN, batchIdx) {
					l = math.NaN()
				}
				if !math.IsNaN(l) && !math.IsInf(l, 0) && nn.GradsFinite(params) {
					adam.Step(params)
					break
				}
				// Undo the poisoned forward pass (running stats included) —
				// Adam never saw the batch, so moments and weights are clean.
				snap.Restore(params)
				if retry+1 >= maxNaNRetries {
					return history, &runx.NumericalError{
						Op: "model.TrainCtx",
						Detail: fmt.Sprintf("non-finite loss/gradient at epoch %d batch %d persisted through %d rollbacks with LR backoff (final LR %g)",
							epoch+1, batches+1, maxNaNRetries, adam.LR),
					}
				}
				adam.LR /= 2
				if tc.Log != nil {
					fmt.Fprintf(tc.Log, "model: non-finite loss/gradient at epoch %d batch %d — rolled back, LR halved to %g\n",
						epoch+1, batches+1, adam.LR)
				}
			}
			batchIdx++
			epochLoss += l
			batches++
		}
		epochLoss /= float64(batches)
		history = append(history, epochLoss)
		if tc.Log != nil {
			fmt.Fprintf(tc.Log, "epoch %3d/%d  loss %.4f\n", epoch+1, tc.Epochs, epochLoss)
		}
		if tc.Checkpoint != "" && ((epoch+1)%every == 0 || epoch+1 == tc.Epochs) {
			cp := trainCheckpoint{
				Seed:    tc.Seed,
				Samples: ds.Len(),
				Epoch:   epoch + 1,
				History: append([]float64(nil), history...),
				Adam:    adam.State(),
			}
			if err := saveTrainCheckpoint(tc.Checkpoint, p.Net, cp); err != nil {
				return history, err
			}
		}
	}
	return history, nil
}

// Evaluate returns the mean absolute error of the predictor on a dataset, in
// z-space.
func (p *Predictor) Evaluate(ds *Dataset) float64 {
	if ds.Len() == 0 {
		return 0
	}
	sum := 0.0
	const chunk = 32
	for start := 0; start < ds.Len(); start += chunk {
		end := min(start+chunk, ds.Len())
		imgs := make([]*grid.Grid, end-start)
		for i := start; i < end; i++ {
			imgs[i-start] = ds.Samples[i].Image
		}
		preds := p.PredictBatch(imgs)
		for i := start; i < end; i++ {
			d := preds[i-start] - p.Norm.Normalize(ds.Samples[i].Score)
			if d < 0 {
				d = -d
			}
			sum += d
		}
	}
	return sum / float64(ds.Len())
}

// RankAccuracy measures how well the predictor orders candidate groups: for
// each group of sample indices (candidates of one layout), it checks whether
// the sample the predictor ranks best is within `slack` of the true best
// score. It returns the fraction of groups ranked correctly.
func (p *Predictor) RankAccuracy(ds *Dataset, groups [][]int, slack float64) float64 {
	if len(groups) == 0 {
		return 0
	}
	hits := 0
	for _, g := range groups {
		if len(g) == 0 {
			continue
		}
		imgs := make([]*grid.Grid, len(g))
		bestTrue := ds.Samples[g[0]].Score
		for i, j := range g {
			imgs[i] = ds.Samples[j].Image
			if s := ds.Samples[j].Score; s < bestTrue {
				bestTrue = s
			}
		}
		preds := p.PredictBatch(imgs)
		bestIdx := 0
		for i, v := range preds {
			if v < preds[bestIdx] {
				bestIdx = i
			}
		}
		if ds.Samples[g[bestIdx]].Score <= bestTrue+slack {
			hits++
		}
	}
	return float64(hits) / float64(len(groups))
}
