//go:build race

package model

// raceEnabled gates the AllocsPerRun regression tests: under the race
// detector sync.Pool randomly drops puts, so the pooled GEMM scratch and
// lane tensors allocate nondeterministically and the zero-alloc contract
// cannot be asserted.
const raceEnabled = true
