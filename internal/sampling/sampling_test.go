package sampling

import (
	"math"
	"strings"
	"testing"

	"ldmo/internal/ilt"
	"ldmo/internal/layout"
)

// testConfig shrinks everything for test speed: labeling happens on the
// coarse raster with few ILT iterations.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Clusters = 3
	cfg.PerCluster = 2
	cfg.MatchCount = 20
	cfg.ILT.MaxIters = 4
	return cfg
}

func pool(t *testing.T, n int) []layout.Layout {
	t.Helper()
	set, err := layout.GenerateSet(11, n, layout.DefaultGenParams())
	if err != nil {
		t.Fatal(err)
	}
	return set
}

func TestSelectLayoutsCountsAndMembership(t *testing.T) {
	p := pool(t, 12)
	cfg := testConfig()
	sel, err := SelectLayouts(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) == 0 || len(sel) > cfg.Clusters*cfg.PerCluster {
		t.Fatalf("selected %d layouts, want in (0, %d]", len(sel), cfg.Clusters*cfg.PerCluster)
	}
	// Every selected layout must come from the pool.
	names := map[string]bool{}
	for _, l := range p {
		names[l.Name] = true
	}
	seen := map[string]bool{}
	for _, l := range sel {
		if !names[l.Name] {
			t.Fatalf("selected layout %s not from pool", l.Name)
		}
		if seen[l.Name] {
			t.Fatalf("layout %s selected twice", l.Name)
		}
		seen[l.Name] = true
	}
}

func TestSelectLayoutsErrors(t *testing.T) {
	cfg := testConfig()
	if _, err := SelectLayouts(nil, cfg); err == nil {
		t.Fatal("empty pool must error")
	}
	cfg.Clusters = 0
	if _, err := SelectLayouts(pool(t, 3), cfg); err == nil {
		t.Fatal("zero clusters must error")
	}
}

func TestSelectLayoutsDeterministic(t *testing.T) {
	p := pool(t, 8)
	cfg := testConfig()
	a, err := SelectLayouts(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SelectLayouts(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatal("not deterministic")
	}
	for i := range a {
		if a[i].Name != b[i].Name {
			t.Fatal("not deterministic")
		}
	}
}

func TestSampleDecompositionsUsesInfiniteNMax(t *testing.T) {
	// A layout whose patterns all sit beyond nmax must still produce more
	// than the single trivial decomposition, because training sampling
	// treats every non-SP pattern as a free 3-wise factor.
	l, err := layout.Cell("NAND2_X1")
	if err != nil {
		t.Fatal(err)
	}
	cands, err := SampleDecompositions(l, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) < 2 {
		t.Fatalf("training sampling produced %d candidates", len(cands))
	}
	for _, d := range cands {
		if !d.Valid(80) {
			t.Fatalf("training candidate %s violates SP separation", d.Key())
		}
	}
}

func TestBuildDatasetLabelsAndGroups(t *testing.T) {
	p := pool(t, 3)
	cfg := testConfig()
	var log strings.Builder
	ds, groups, err := BuildDataset(p, cfg, &log)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() == 0 {
		t.Fatal("empty dataset")
	}
	if len(groups) != len(p) {
		t.Fatalf("groups = %d, want %d", len(groups), len(p))
	}
	total := 0
	for _, g := range groups {
		total += len(g)
		for _, idx := range g {
			if idx < 0 || idx >= ds.Len() {
				t.Fatalf("group index %d out of range", idx)
			}
		}
	}
	if total != ds.Len() {
		t.Fatalf("groups cover %d of %d samples", total, ds.Len())
	}
	for i, s := range ds.Samples {
		if s.Image == nil || s.Image.W != cfg.ImageSize {
			t.Fatalf("sample %d image misshapen", i)
		}
		if math.IsNaN(s.Score) {
			t.Fatalf("sample %d score = %g", i, s.Score)
		}
	}
	// With per-layout centering, each group's labels sum to ~0.
	for gi, g := range groups {
		sum := 0.0
		for _, idx := range g {
			sum += ds.Samples[idx].Score
		}
		if math.Abs(sum) > 1e-6*float64(len(g)+1) {
			t.Fatalf("group %d not centered: sum %g", gi, sum)
		}
	}
	if !strings.Contains(log.String(), "labeled") {
		t.Fatal("no progress log emitted")
	}
}

func TestBuildDatasetScoresVary(t *testing.T) {
	// Different decompositions of a layout with real choice must produce
	// at least two distinct labels — otherwise there is nothing to learn.
	l, err := layout.Cell("AOI211_X1")
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	cfg.ILT.MaxIters = 8
	ds, _, err := BuildDataset([]layout.Layout{l}, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	distinct := map[float64]bool{}
	for _, s := range ds.Samples {
		distinct[s.Score] = true
	}
	if len(distinct) < 2 {
		t.Fatalf("all %d labels identical", ds.Len())
	}
}

func TestBuildRandomDataset(t *testing.T) {
	p := pool(t, 4)
	cfg := testConfig()
	ds, groups, err := BuildRandomDataset(p, 6, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() < 6 {
		t.Fatalf("random dataset has %d samples, want >= 6", ds.Len())
	}
	if len(groups) == 0 {
		t.Fatal("no groups")
	}
	if _, _, err := BuildRandomDataset(nil, 5, cfg, nil); err == nil {
		t.Fatal("empty pool must error")
	}
	if _, _, err := BuildRandomDataset(p, 0, cfg, nil); err == nil {
		t.Fatal("zero target must error")
	}
}

func TestPaperConfigConstants(t *testing.T) {
	pc := PaperConfig()
	if pc.Clusters != 50 || pc.PerCluster != 5 {
		t.Fatalf("paper sampling constants: %d clusters x %d", pc.Clusters, pc.PerCluster)
	}
	if pc.Dth != 0.7 || pc.MatchCount != 60 {
		t.Fatalf("paper SIFT constants: Dth %g, c %d", pc.Dth, pc.MatchCount)
	}
}

func TestSampleDecompositionsDeduped(t *testing.T) {
	l, err := layout.Cell("AOI22_X1")
	if err != nil {
		t.Fatal(err)
	}
	cands, err := SampleDecompositions(l, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, d := range cands {
		if seen[d.Key()] {
			t.Fatalf("duplicate training candidate %s", d.Key())
		}
		seen[d.Key()] = true
	}
}

func TestLabelIsScore(t *testing.T) {
	l, err := layout.Cell("INV_X1")
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	opt, err := ilt.NewOptimizer(l, cfg.ILT)
	if err != nil {
		t.Fatal(err)
	}
	cands, err := SampleDecompositions(l, cfg)
	if err != nil {
		t.Fatal(err)
	}
	score := Label(opt, cands[0], cfg.Weights)
	if math.IsNaN(score) || score < 0 {
		t.Fatalf("label = %g", score)
	}
}
