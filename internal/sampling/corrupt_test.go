package sampling

import (
	"context"
	"errors"
	"os"
	"reflect"
	"strings"
	"testing"

	"ldmo/internal/artifact"
	"ldmo/internal/faultinject"
	"ldmo/internal/geom"
	"ldmo/internal/grid"
)

// TestReadShardRejectsCorruptionClasses: every corruption class on a dataset
// shard must come back wrapping the matching artifact sentinel, so BuildDataset
// can tell recoverable rot (quarantine and relabel) from everything else.
func TestReadShardRejectsCorruptionClasses(t *testing.T) {
	valid := shard{
		Layout: "l0",
		Index:  0,
		Imgs:   []*grid.Grid{grid.New(3, 2, 1, geom.Point{})},
		Scores: []float64{1.5},
	}

	cases := []struct {
		name    string
		corrupt func(t *testing.T, dir string)
		want    error
	}{
		{"bitflip", func(t *testing.T, dir string) {
			p := shardPath(dir, 0)
			b, err := os.ReadFile(p)
			if err != nil {
				t.Fatal(err)
			}
			b[len(b)-1] ^= 0x01
			if err := os.WriteFile(p, b, 0o644); err != nil {
				t.Fatal(err)
			}
		}, artifact.ErrCorrupt},
		{"truncation", func(t *testing.T, dir string) {
			p := shardPath(dir, 0)
			fi, err := os.Stat(p)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.Truncate(p, fi.Size()/2); err != nil {
				t.Fatal(err)
			}
		}, artifact.ErrCorrupt},
		{"version-skew", func(t *testing.T, dir string) {
			if err := artifact.WriteFile(shardPath(dir, 0), shardKind, shardVersion+1, []byte("future")); err != nil {
				t.Fatal(err)
			}
		}, artifact.ErrVersionMismatch},
		{"wrong-kind", func(t *testing.T, dir string) {
			if err := artifact.WriteFile(shardPath(dir, 0), "train-checkpoint", shardVersion, []byte("imposter")); err != nil {
				t.Fatal(err)
			}
		}, artifact.ErrWrongKind},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			if err := writeShard(dir, valid); err != nil {
				t.Fatal(err)
			}
			tc.corrupt(t, dir)
			_, _, err := readShard(dir, 0, "l0")
			if !errors.Is(err, tc.want) {
				t.Fatalf("corrupted shard returned %v, want %v", err, tc.want)
			}
			if !artifact.Rejected(err) {
				t.Fatalf("error %v not recognized as a rejected envelope", err)
			}
		})
	}
}

// TestBuildDatasetQuarantinesBitFlippedShard is the acceptance test for shard
// recovery: interrupt a checkpointed build, flip a bit in one committed shard
// (via the artifact-bitflip point, at read time), and require the resumed
// build to quarantine exactly that shard, recompute just that layout, and
// still produce a dataset bit-identical to an uninterrupted build.
func TestBuildDatasetQuarantinesBitFlippedShard(t *testing.T) {
	defer faultinject.Reset()
	p := pool(t, 3)
	cfg := testConfig()
	cfg.Workers = 1 // serial lane makes the interrupt point exact

	want, wantGroups, err := BuildDataset(p, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	cfg.Checkpoint = dir
	faultinject.Set(faultinject.CancelAfter, "1")
	if _, _, err := BuildDatasetCtx(context.Background(), p, cfg, nil); err == nil {
		t.Fatal("interrupted build must return the context error")
	}
	faultinject.Reset()
	if got := CheckpointShards(dir, len(p)); got == 0 || got >= len(p) {
		t.Fatalf("interrupted build persisted %d/%d shards, want a strict partial set", got, len(p))
	}
	if _, err := os.Stat(shardPath(dir, 0)); err != nil {
		t.Fatalf("shard 0 missing after the interrupt: %v", err)
	}

	// One-shot, selector-matched: only shard 0 is corrupted, on its next read.
	faultinject.Set(faultinject.ArtifactBitflip, "shard_00000")
	var log strings.Builder
	ds, groups, err := BuildDatasetCtx(context.Background(), p, cfg, &log)
	if err != nil {
		t.Fatalf("resume over a rotten shard failed: %v\nlog:\n%s", err, log.String())
	}
	if !strings.Contains(log.String(), "discarding shard 0") ||
		!strings.Contains(log.String(), "quarantined to") ||
		!strings.Contains(log.String(), "relabeling") {
		t.Fatalf("quarantine not reported:\n%s", log.String())
	}
	if _, err := os.Stat(shardPath(dir, 0) + artifact.QuarantineSuffix); err != nil {
		t.Fatalf("rotten shard not quarantined: %v", err)
	}
	if !reflect.DeepEqual(ds, want) {
		t.Fatal("recovered dataset differs from the uninterrupted build")
	}
	if !reflect.DeepEqual(groups, wantGroups) {
		t.Fatal("recovered groups differ from the uninterrupted build")
	}
	// The recomputed shard was re-committed, so one more resume is a pure
	// stitch with no recomputation and no new quarantine.
	var relog strings.Builder
	ds2, _, err := BuildDatasetCtx(context.Background(), p, cfg, &relog)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(relog.String(), "discarding") {
		t.Fatalf("clean re-resume quarantined again:\n%s", relog.String())
	}
	if !reflect.DeepEqual(ds2, want) {
		t.Fatal("re-resumed dataset differs from the uninterrupted build")
	}
}

// TestBuildDatasetQuarantinesTruncatedShard: the torn-write flavor of the
// same recovery, driven by the artifact-truncate point.
func TestBuildDatasetQuarantinesTruncatedShard(t *testing.T) {
	defer faultinject.Reset()
	p := pool(t, 3)
	cfg := testConfig()
	cfg.Workers = 1
	cfg.Checkpoint = t.TempDir()

	want, _, err := BuildDataset(p, testConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := BuildDatasetCtx(context.Background(), p, cfg, nil); err != nil {
		t.Fatal(err)
	}

	faultinject.Set(faultinject.ArtifactTruncate, "shard_00001")
	var log strings.Builder
	ds, _, err := BuildDatasetCtx(context.Background(), p, cfg, &log)
	if err != nil {
		t.Fatalf("resume over a truncated shard failed: %v", err)
	}
	if !strings.Contains(log.String(), "discarding shard 1") {
		t.Fatalf("quarantine not reported:\n%s", log.String())
	}
	if !reflect.DeepEqual(ds, want) {
		t.Fatal("recovered dataset differs from the clean build")
	}
}
