// Package sampling builds the predictor's training set the way the paper
// does (§IV): layout sampling by SIFT feature similarity + k-medoids
// clustering (representative layouts only), decomposition sampling by MST +
// 3-wise covering arrays (representative mask assignments only), and ILT
// labeling with the Eq. 9 score. The random-sampling baseline of Fig. 8 is
// implemented alongside for the comparison experiment.
package sampling

import (
	"context"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sync/atomic"

	"ldmo/internal/artifact"
	"ldmo/internal/cluster"
	"ldmo/internal/decomp"
	"ldmo/internal/faultinject"
	"ldmo/internal/grid"
	"ldmo/internal/ilt"
	"ldmo/internal/layout"
	"ldmo/internal/model"
	"ldmo/internal/par"
	"ldmo/internal/sift"
)

// Config parameterizes the full training-set pipeline.
type Config struct {
	// Clusters is the k-medoids cluster count (paper: m=50).
	Clusters int
	// PerCluster is how many layouts are drawn per cluster (paper: 5).
	PerCluster int
	// MatchCount is the number of best feature matches summed into the
	// layout distance (paper: c=60).
	MatchCount int
	// Dth is the SIFT match threshold (paper: 0.7).
	Dth float64
	// SIFT configures the feature detector.
	SIFT sift.Params
	// Res is the rasterization resolution for SIFT images, nm/pixel.
	Res int
	// ImageSize is the CNN input edge for dataset images.
	ImageSize int
	// ILT configures the labeling optimizer (full runs, no aborting).
	ILT ilt.Config
	// Weights are the Eq. 9 score coefficients.
	Weights model.ScoreWeights
	// CenterPerLayout subtracts each layout's mean label from its
	// decompositions' labels before training. The predictor is only ever
	// used to *rank candidates of one layout*, and absolute Eq. 9 scores
	// are dominated by layout-identity terms (base L2 area) that carry no
	// ranking signal; centering removes that nuisance variance. This is an
	// implementation refinement over the paper's plain global z-score.
	CenterPerLayout bool
	// Seed drives cluster initialization, per-cluster draws, and the
	// covering-array construction.
	Seed int64
	// Workers bounds the labeling fan-out of BuildDataset (one optimizer
	// per in-flight layout); 0 selects par.Workers(), 1 forces the serial
	// loop. The dataset is bit-identical at any worker count.
	Workers int
	// Checkpoint, when non-empty, is a directory where BuildDataset
	// persists one shard per labeled layout (written atomically) and from
	// which a later run over the same layout list resumes, skipping
	// already-labeled layouts. Because per-layout labeling is
	// deterministic and independent, a resumed dataset is bit-identical
	// to an uninterrupted build.
	Checkpoint string
}

// DefaultConfig returns a CPU-scale pipeline: the paper's thresholds with
// cluster counts reduced to match the smaller synthetic layout pool, and
// labeling on the fast (8nm) raster.
func DefaultConfig() Config {
	iltCfg := ilt.DefaultConfig()
	iltCfg.AbortOnViolation = false // labels need full trajectories
	iltCfg.Litho.Resolution = 8
	return Config{
		Clusters:        8,
		PerCluster:      3,
		MatchCount:      60,
		Dth:             0.7,
		SIFT:            sift.DefaultParams(),
		Res:             4,
		ImageSize:       64,
		ILT:             iltCfg,
		Weights:         model.DefaultScoreWeights(),
		CenterPerLayout: true,
		Seed:            1,
	}
}

// PaperConfig returns the paper's published constants (m=50 clusters, 5 per
// cluster, c=60, Dth=0.7). Labeling a pool at this scale takes CPU-hours.
func PaperConfig() Config {
	c := DefaultConfig()
	c.Clusters = 50
	c.PerCluster = 5
	return c
}

// SelectLayouts reduces a layout pool to its representatives: SIFT features
// per layout, symmetrized Algorithm 2 distances, k-medoids clustering, then
// PerCluster random draws from every cluster (always including the medoid).
func SelectLayouts(pool []layout.Layout, cfg Config) ([]layout.Layout, error) {
	if len(pool) == 0 {
		return nil, fmt.Errorf("sampling: empty layout pool")
	}
	k := cfg.Clusters
	if k <= 0 {
		return nil, fmt.Errorf("sampling: non-positive cluster count %d", k)
	}
	feats := make([][]sift.Feature, len(pool))
	for i, l := range pool {
		feats[i] = sift.Detect(l.Rasterize(cfg.Res), cfg.SIFT)
	}
	dist := make([][]float64, len(pool))
	for i := range dist {
		dist[i] = make([]float64, len(pool))
	}
	for i := 0; i < len(pool); i++ {
		for j := i + 1; j < len(pool); j++ {
			// Algorithm 2 is asymmetric (it matches w's features into
			// s); symmetrize for the clustering metric.
			d := (sift.LayoutSimilarity(feats[i], feats[j], cfg.Dth, cfg.MatchCount) +
				sift.LayoutSimilarity(feats[j], feats[i], cfg.Dth, cfg.MatchCount)) / 2
			dist[i][j] = d
			dist[j][i] = d
		}
	}
	res, err := cluster.KMedoids(dist, k, cfg.Seed, 100)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 17))
	var out []layout.Layout
	for c, members := range res.Members() {
		if len(members) == 0 {
			continue
		}
		// The medoid always represents its cluster; additional draws are
		// random members, as in the paper's "randomly select 5 layouts in
		// each cluster".
		picked := map[int]bool{res.Medoids[c]: true}
		out = append(out, pool[res.Medoids[c]])
		perm := rng.Perm(len(members))
		for _, pi := range perm {
			if len(picked) >= cfg.PerCluster {
				break
			}
			idx := members[pi]
			if picked[idx] {
				continue
			}
			picked[idx] = true
			out = append(out, pool[idx])
		}
	}
	return out, nil
}

// SampleDecompositions produces the training decompositions of one layout
// per §IV-B: only sub-nmin pairs count as SP (everything else is a free
// 3-wise factor), implemented by pushing nmax to infinity so the generator's
// VP set absorbs all non-SP patterns.
func SampleDecompositions(l layout.Layout, cfg Config) ([]decomp.Decomposition, error) {
	gen := decomp.NewGenerator()
	gen.Seed = cfg.Seed
	gen.Classify.NMax = math.Inf(1)
	return gen.Generate(l)
}

// Label runs full ILT on one decomposition and returns its raw Eq. 9 score.
func Label(opt *ilt.Optimizer, d decomp.Decomposition, w model.ScoreWeights) float64 {
	r := opt.Run(d)
	return w.Score(r.L2, r.EPE.Violations, r.Violations.Total())
}

// computeShard runs the deterministic per-layout labeling pipeline — sampled
// decompositions, one fresh optimizer, Eq. 9 labels plus CNN input images —
// and returns the result as a shard. This is the single compute path shared
// by BuildDatasetCtx and the factory's BuildShard, which is what makes a
// multi-process factory corpus byte-identical to a serial build.
func computeShard(l layout.Layout, li int, cfg Config) (shard, error) {
	cands, err := SampleDecompositions(l, cfg)
	if err != nil {
		return shard{}, fmt.Errorf("sampling: layout %s: %w", l.Name, err)
	}
	opt, err := ilt.NewOptimizer(l, cfg.ILT)
	if err != nil {
		return shard{}, fmt.Errorf("sampling: layout %s: %w", l.Name, err)
	}
	s := shard{
		Layout: l.Name,
		Index:  li,
		Imgs:   make([]*grid.Grid, len(cands)),
		Scores: make([]float64, len(cands)),
	}
	for i, d := range cands {
		s.Scores[i] = Label(opt, d, cfg.Weights)
		s.Imgs[i] = d.GrayImage(cfg.Res, cfg.ImageSize)
	}
	return s, nil
}

// BuildDataset labels every sampled decomposition of every layout and
// returns the dataset plus the per-layout sample-index groups (used for
// ranking metrics). Progress lines go to log when non-nil. It is
// BuildDatasetCtx without cancellation.
func BuildDataset(layouts []layout.Layout, cfg Config, log io.Writer) (*model.Dataset, [][]int, error) {
	return BuildDatasetCtx(context.Background(), layouts, cfg, log)
}

// BuildDatasetCtx is the hardened labeling pipeline. Layouts are labeled in
// parallel across cfg.Workers lanes — every in-flight layout owns its
// optimizer (and hence its simulator), exactly as the serial loop did — and
// the per-layout results are stitched into the dataset in layout order, so
// the dataset is byte-identical to the serial build at any worker count.
//
// When cfg.Checkpoint is set, each labeled layout is persisted as an atomic
// shard the moment it completes and already-persisted shards are loaded
// instead of re-labeled, so a cancelled build loses at most the layouts that
// were in flight. On cancellation the context error is returned (the shards
// remain on disk); a resumed call with the same layouts and config produces
// a dataset bit-identical to an uninterrupted build.
func BuildDatasetCtx(ctx context.Context, layouts []layout.Layout, cfg Config, log io.Writer) (*model.Dataset, [][]int, error) {
	type labeled struct {
		imgs   []*grid.Grid
		scores []float64
		// quarantined notes a shard that failed envelope verification and
		// was renamed aside before this layout was relabeled; logged in the
		// (serial) stitch loop.
		quarantined string
		err         error
	}
	ctx, cancel := context.WithCancel(orBackground(ctx))
	defer cancel()
	var persisted atomic.Int64
	results := make([]labeled, len(layouts))
	pool := par.NewPool(cfg.Workers)
	_, cerr := pool.MapCtx(ctx, len(layouts), func(_, li int) {
		l := layouts[li]
		var quarantined string
		if cfg.Checkpoint != "" {
			s, ok, err := readShard(cfg.Checkpoint, li, l.Name)
			switch {
			case err != nil && artifact.Rejected(err):
				// The shard failed envelope verification (bit flip, torn
				// write, version skew, wrong kind). Labeling is deterministic
				// per layout, so quarantine the bad bytes and recompute just
				// this layout — the resumed dataset stays bit-identical.
				q, qerr := artifact.Quarantine(shardPath(cfg.Checkpoint, li))
				if qerr != nil {
					results[li] = labeled{err: fmt.Errorf("sampling: shard %d rejected (%v) and not quarantinable: %w", li, err, qerr)}
					return
				}
				quarantined = fmt.Sprintf("sampling: discarding shard %d (%v); quarantined to %s; relabeling %s\n", li, err, q, l.Name)
			case err != nil:
				results[li] = labeled{err: err}
				return
			case ok:
				results[li] = labeled{imgs: s.Imgs, scores: s.Scores}
				return
			}
		}
		s, err := computeShard(l, li, cfg)
		if err != nil {
			results[li] = labeled{err: err}
			return
		}
		out := labeled{imgs: s.Imgs, scores: s.Scores, quarantined: quarantined}
		if cfg.Checkpoint != "" {
			if err := writeShard(cfg.Checkpoint, s); err != nil {
				results[li] = labeled{err: err}
				return
			}
			// Deterministic interrupt for the resume tests: cancel our own
			// context once enough shards landed.
			if n := faultinject.ArgInt(faultinject.CancelAfter, -1); n >= 0 &&
				persisted.Add(1) >= int64(n) {
				cancel()
			}
		}
		results[li] = out
	})
	if cerr != nil {
		return nil, nil, fmt.Errorf("sampling: labeling interrupted: %w", cerr)
	}
	ds := &model.Dataset{}
	var groups [][]int
	for li, r := range results {
		if r.err != nil {
			return nil, nil, r.err
		}
		var group []int
		for i := range r.imgs {
			group = append(group, ds.Len())
			ds.Add(r.imgs[i], r.scores[i])
		}
		if cfg.CenterPerLayout {
			centerGroup(ds, group)
		}
		groups = append(groups, group)
		if log != nil {
			if r.quarantined != "" {
				fmt.Fprint(log, r.quarantined)
			}
			fmt.Fprintf(log, "labeled %3d/%d  %-12s  %d decompositions\n",
				li+1, len(results), layouts[li].Name, len(r.imgs))
		}
	}
	return ds, groups, nil
}

// orBackground tolerates a nil context.
func orBackground(ctx context.Context) context.Context {
	if ctx == nil {
		return context.Background()
	}
	return ctx
}

// BuildRandomDataset is the Fig. 8 baseline: layouts drawn uniformly from
// the pool and decompositions drawn uniformly from the full 2^(n-1) space,
// labeled identically. targetSize matches the size of the sampled dataset so
// the comparison is equal-budget.
func BuildRandomDataset(pool []layout.Layout, targetSize int, cfg Config, log io.Writer) (*model.Dataset, [][]int, error) {
	if len(pool) == 0 || targetSize <= 0 {
		return nil, nil, fmt.Errorf("sampling: invalid random dataset request")
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 101))
	ds := &model.Dataset{}
	var groups [][]int
	for ds.Len() < targetSize {
		l := pool[rng.Intn(len(pool))]
		opt, err := ilt.NewOptimizer(l, cfg.ILT)
		if err != nil {
			return nil, nil, err
		}
		// A handful of random decompositions per drawn layout.
		per := min(1+rng.Intn(4), targetSize-ds.Len())
		var group []int
		seen := map[string]bool{}
		for k := 0; k < per; k++ {
			assign := make([]uint8, len(l.Patterns))
			for i := range assign {
				assign[i] = uint8(rng.Intn(2))
			}
			d := decomp.New(l, assign).Canonicalize()
			if seen[d.Key()] {
				continue
			}
			seen[d.Key()] = true
			score := Label(opt, d, cfg.Weights)
			group = append(group, ds.Len())
			ds.Add(d.GrayImage(cfg.Res, cfg.ImageSize), score)
		}
		if cfg.CenterPerLayout {
			centerGroup(ds, group)
		}
		groups = append(groups, group)
		if log != nil {
			fmt.Fprintf(log, "random-labeled %4d/%d\n", ds.Len(), targetSize)
		}
	}
	return ds, groups, nil
}

// centerGroup subtracts the group's mean score from each member in place.
func centerGroup(ds *model.Dataset, group []int) {
	if len(group) == 0 {
		return
	}
	mean := 0.0
	for _, i := range group {
		mean += ds.Samples[i].Score
	}
	mean /= float64(len(group))
	for _, i := range group {
		ds.Samples[i].Score -= mean
	}
}
