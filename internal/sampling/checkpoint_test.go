package sampling

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"ldmo/internal/faultinject"
	"ldmo/internal/geom"
	"ldmo/internal/grid"
)

// TestBuildDatasetCheckpointResumeBitIdentical is the acceptance test for
// labeling resume: interrupt a checkpointed build partway (via the
// deterministic cancel-after fault point), confirm shards landed on disk,
// then resume and require the dataset to be bit-identical to an
// uninterrupted build.
func TestBuildDatasetCheckpointResumeBitIdentical(t *testing.T) {
	p := pool(t, 3)
	cfg := testConfig()
	cfg.Workers = 1 // serial lane makes the interrupt point exact

	var wantLog strings.Builder
	want, wantGroups, err := BuildDataset(p, cfg, &wantLog)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	cfg.Checkpoint = dir
	faultinject.Set(faultinject.CancelAfter, "1")
	_, _, err = BuildDatasetCtx(context.Background(), p, cfg, nil)
	faultinject.Reset()
	if err == nil {
		t.Fatal("interrupted build must return the context error")
	}
	if !strings.Contains(err.Error(), "interrupted") {
		t.Fatalf("unexpected interrupt error: %v", err)
	}
	got := CheckpointShards(dir, len(p))
	if got == 0 || got >= len(p) {
		t.Fatalf("interrupted build persisted %d/%d shards, want a strict partial set", got, len(p))
	}

	var resLog strings.Builder
	ds, groups, err := BuildDatasetCtx(context.Background(), p, cfg, &resLog)
	if err != nil {
		t.Fatalf("resume failed: %v", err)
	}
	if CheckpointShards(dir, len(p)) != len(p) {
		t.Fatal("resumed build did not complete the shard set")
	}
	if !reflect.DeepEqual(ds, want) {
		t.Fatal("resumed dataset differs from the uninterrupted build")
	}
	if !reflect.DeepEqual(groups, wantGroups) {
		t.Fatal("resumed groups differ from the uninterrupted build")
	}
	if resLog.String() != wantLog.String() {
		t.Fatalf("resumed progress log diverged:\nresumed:\n%s\nclean:\n%s", resLog.String(), wantLog.String())
	}
}

// TestBuildDatasetCheckpointForeignFilesIgnored pins the resume scan's
// contract with the dataset factory: a checkpoint directory littered with
// foreign files — editor droppings, factory leases and poison records, stray
// quarantine corpses — must resume cleanly and bit-identically, reading only
// shard_NNNNN.gob files and leaving the litter untouched.
func TestBuildDatasetCheckpointForeignFilesIgnored(t *testing.T) {
	p := pool(t, 3)
	cfg := testConfig()
	cfg.Workers = 1

	var wantLog strings.Builder
	want, wantGroups, err := BuildDataset(p, cfg, &wantLog)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	cfg.Checkpoint = dir
	junk := map[string]string{
		"notes.txt~":                  "editor dropping",
		"shard_00000.gob.lease":       `{"token":"t","pid":1,"index":0}`,
		"shard_00001.poison":          "poison record",
		"shard_00002.gob.quarantined": "old corpse",
		"factory.gob":                 "factory spec",
		".DS_Store":                   "finder litter",
	}
	for name, body := range junk {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	faultinject.Set(faultinject.CancelAfter, "1")
	_, _, err = BuildDatasetCtx(context.Background(), p, cfg, nil)
	faultinject.Reset()
	if err == nil {
		t.Fatal("interrupted build must return the context error")
	}

	var resLog strings.Builder
	ds, groups, err := BuildDatasetCtx(context.Background(), p, cfg, &resLog)
	if err != nil {
		t.Fatalf("resume amid foreign files failed: %v", err)
	}
	if !reflect.DeepEqual(ds, want) || !reflect.DeepEqual(groups, wantGroups) {
		t.Fatal("resume amid foreign files diverged from the clean build")
	}
	if resLog.String() != wantLog.String() {
		t.Fatalf("resumed progress log diverged:\n%s", resLog.String())
	}
	for name, body := range junk {
		got, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil || string(got) != body {
			t.Fatalf("foreign file %s disturbed: %q err=%v", name, got, err)
		}
	}
}

// TestBuildShardIdempotent: the factory's unit of work computes once, reuses
// the sealed shard on re-claim, and two builds leave byte-identical files.
func TestBuildShardIdempotent(t *testing.T) {
	p := pool(t, 2)
	cfg := testConfig()
	dir := t.TempDir()

	computed, q, err := BuildShard(dir, 1, p[1], cfg)
	if err != nil || !computed || q != "" {
		t.Fatalf("first BuildShard: computed=%v q=%q err=%v", computed, q, err)
	}
	first, err := os.ReadFile(ShardFile(dir, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyShard(dir, 1, p[1].Name); err != nil {
		t.Fatalf("VerifyShard after build: %v", err)
	}
	if err := VerifyShard(dir, 0, p[0].Name); err == nil {
		t.Fatal("VerifyShard must report a missing shard")
	}

	computed, q, err = BuildShard(dir, 1, p[1], cfg)
	if err != nil || computed || q != "" {
		t.Fatalf("re-claimed BuildShard: computed=%v q=%q err=%v", computed, q, err)
	}
	second, err := os.ReadFile(ShardFile(dir, 1))
	if err != nil {
		t.Fatal(err)
	}
	if string(first) != string(second) {
		t.Fatal("re-claimed shard bytes differ")
	}
}

// TestBuildDatasetCheckpointStaleDirRejected: resuming against shards from a
// different layout list must fail loudly, not stitch foreign samples in.
func TestBuildDatasetCheckpointStaleDirRejected(t *testing.T) {
	p := pool(t, 3)
	cfg := testConfig()
	cfg.Workers = 1
	cfg.Checkpoint = t.TempDir()
	if _, _, err := BuildDatasetCtx(context.Background(), p, cfg, nil); err != nil {
		t.Fatal(err)
	}

	other := pool(t, 4) // different pool → different layout names
	if other[0].Name == p[0].Name {
		t.Skip("layout pools unexpectedly share names")
	}
	if _, _, err := BuildDatasetCtx(context.Background(), other, cfg, nil); err == nil {
		t.Fatal("stale checkpoint dir must be rejected")
	} else if !strings.Contains(err.Error(), "stale checkpoint") {
		t.Fatalf("unexpected stale-dir error: %v", err)
	}
}

// TestWriteShardAtomic: a committed shard round-trips exactly and leaves no
// temp litter behind; mismatched indices are rejected on read.
func TestWriteShardAtomic(t *testing.T) {
	dir := t.TempDir()
	s := shard{
		Layout: "l0",
		Index:  2,
		Imgs:   []*grid.Grid{grid.New(3, 2, 1, geom.Point{})},
		Scores: []float64{4.5},
	}
	s.Imgs[0].Data[1] = 0.25
	if err := writeShard(dir, s); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "shard_00002.gob" {
		t.Fatalf("unexpected checkpoint dir contents: %v", entries)
	}
	got, ok, err := readShard(dir, 2, "l0")
	if err != nil || !ok {
		t.Fatalf("readShard: ok=%v err=%v", ok, err)
	}
	if !reflect.DeepEqual(got, s) {
		t.Fatal("shard did not round-trip")
	}
	if _, ok, err := readShard(dir, 3, "l0"); err != nil || ok {
		t.Fatalf("missing shard must be ok=false, got ok=%v err=%v", ok, err)
	}
	if _, _, err := readShard(dir, 2, "other"); err == nil {
		t.Fatal("layout-name mismatch must be rejected")
	}
}

// TestCheckpointShardsCounts: the progress counter sees exactly the committed
// shard files.
func TestCheckpointShardsCounts(t *testing.T) {
	dir := t.TempDir()
	if n := CheckpointShards(dir, 5); n != 0 {
		t.Fatalf("empty dir reports %d shards", n)
	}
	for _, i := range []int{0, 3} {
		if err := os.WriteFile(shardPath(dir, i), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// Temp litter must not count.
	if err := os.WriteFile(filepath.Join(dir, "shard_abc.tmp"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if n := CheckpointShards(dir, 5); n != 2 {
		t.Fatalf("CheckpointShards = %d, want 2", n)
	}
}
