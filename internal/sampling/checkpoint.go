package sampling

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"

	"ldmo/internal/artifact"
	"ldmo/internal/grid"
	"ldmo/internal/layout"
)

// Sealed-envelope identity of a dataset shard. The schema version is bumped
// whenever the shard struct changes incompatibly, so a checkpoint directory
// from another build is rejected (and requarantined per shard) instead of
// stitching misdecoded samples into the dataset.
const (
	shardKind    = "dataset-shard"
	shardVersion = 1
)

// Persisted sampling types claim their gob type IDs at init, in a fixed
// order, keeping sealed shard bytes a pure function of the labeled state.
func init() {
	artifact.StabilizeGob(shard{})
}

// shard is the persisted labeling result of one layout: everything
// BuildDataset needs to stitch the layout into the dataset without re-running
// ILT. Shards are keyed by layout index and carry the layout name so a stale
// checkpoint directory (different pool or config) is rejected instead of
// silently corrupting the dataset.
type shard struct {
	Layout string
	Index  int
	Imgs   []*grid.Grid
	Scores []float64
}

// shardPath returns the shard file for layout index i.
func shardPath(dir string, i int) string {
	return filepath.Join(dir, fmt.Sprintf("shard_%05d.gob", i))
}

// writeShard persists a labeled layout as a sealed artifact, atomically. A
// crash or cancellation can never leave a half-written shard behind, and a
// shard that rots on disk is detected by checksum on the next resume.
func writeShard(dir string, s shard) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(s); err != nil {
		return fmt.Errorf("sampling: encode shard %d: %w", s.Index, err)
	}
	if err := artifact.WriteFile(shardPath(dir, s.Index), shardKind, shardVersion, buf.Bytes()); err != nil {
		return fmt.Errorf("sampling: write shard %d: %w", s.Index, err)
	}
	return nil
}

// readShard loads the shard of layout index i when present. ok is false when
// the shard does not exist. A rejected envelope (bit flip, truncation,
// version skew, wrong kind) comes back wrapping the artifact sentinel — the
// caller quarantines and relabels. A shard recorded for a different layout
// name is a hard error (the checkpoint directory belongs to another run).
func readShard(dir string, i int, layoutName string) (shard, bool, error) {
	path := shardPath(dir, i)
	payload, err := artifact.ReadFile(path, shardKind, shardVersion)
	if errors.Is(err, fs.ErrNotExist) {
		return shard{}, false, nil
	}
	if err != nil {
		return shard{}, false, err
	}
	var s shard
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&s); err != nil {
		return shard{}, false, fmt.Errorf("sampling: shard %s undecodable (%v): %w", path, err, artifact.ErrCorrupt)
	}
	if s.Index != i || s.Layout != layoutName {
		return shard{}, false, fmt.Errorf(
			"sampling: shard %d belongs to layout %q at index %d, expected %q — stale checkpoint dir?",
			i, s.Layout, s.Index, layoutName)
	}
	if len(s.Imgs) != len(s.Scores) {
		return shard{}, false, fmt.Errorf("sampling: shard %s inconsistent (%d images, %d scores): %w",
			path, len(s.Imgs), len(s.Scores), artifact.ErrCorrupt)
	}
	return s, true, nil
}

// ShardFile returns the sealed shard file for layout index i — the name the
// dataset factory leases, seals, and digests. Only shard_NNNNN.gob files are
// ever read back by resume: anything else in the directory (leases, poison
// records, quarantined corpses, editor droppings) is ignored.
func ShardFile(dir string, i int) string {
	return shardPath(dir, i)
}

// BuildShard labels layout l (index li) and seals it as shard li in dir,
// unless a valid sealed shard is already present — the idempotent unit of
// work a factory worker performs under its lease. A rejected existing
// envelope is quarantined aside and the layout relabeled. computed reports
// whether labeling actually ran (false: the existing shard was reused), and
// quarantined names the corpse when one was set aside. Labeling is
// deterministic per layout, so two workers racing on the same index write
// byte-identical shards and the atomic seal makes the race benign.
func BuildShard(dir string, li int, l layout.Layout, cfg Config) (computed bool, quarantined string, err error) {
	_, ok, rerr := readShard(dir, li, l.Name)
	switch {
	case rerr != nil && artifact.Rejected(rerr):
		q, qerr := artifact.Quarantine(shardPath(dir, li))
		if qerr != nil {
			return false, "", fmt.Errorf("sampling: shard %d rejected (%v) and not quarantinable: %w", li, rerr, qerr)
		}
		quarantined = q
	case rerr != nil:
		return false, "", rerr
	case ok:
		return false, "", nil
	}
	s, err := computeShard(l, li, cfg)
	if err != nil {
		return false, quarantined, err
	}
	if err := writeShard(dir, s); err != nil {
		return false, quarantined, err
	}
	return true, quarantined, nil
}

// VerifyShard checks that the sealed shard for layout index li exists, passes
// envelope verification, decodes, and belongs to layoutName — the manifest
// builder's pre-digest gate. A missing shard is an error here, unlike during
// resume.
func VerifyShard(dir string, li int, layoutName string) error {
	_, ok, err := readShard(dir, li, layoutName)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("sampling: shard %d (%s) missing from %s", li, layoutName, dir)
	}
	return nil
}

// CheckpointShards reports how many of the n layout shards exist in dir —
// the resume progress a caller can surface to the operator.
func CheckpointShards(dir string, n int) int {
	count := 0
	for i := 0; i < n; i++ {
		if _, err := os.Stat(shardPath(dir, i)); err == nil {
			count++
		}
	}
	return count
}
