package sampling

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"

	"ldmo/internal/grid"
)

// shard is the persisted labeling result of one layout: everything
// BuildDataset needs to stitch the layout into the dataset without re-running
// ILT. Shards are keyed by layout index and carry the layout name so a stale
// checkpoint directory (different pool or config) is rejected instead of
// silently corrupting the dataset.
type shard struct {
	Layout string
	Index  int
	Imgs   []*grid.Grid
	Scores []float64
}

// shardPath returns the shard file for layout index i.
func shardPath(dir string, i int) string {
	return filepath.Join(dir, fmt.Sprintf("shard_%05d.gob", i))
}

// writeShard persists a labeled layout atomically: encode into a temp file
// in the same directory, fsync, then rename over the final name. A crash or
// cancellation can therefore never leave a half-written shard behind.
func writeShard(dir string, s shard) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("sampling: checkpoint dir: %w", err)
	}
	f, err := os.CreateTemp(dir, "shard_*.tmp")
	if err != nil {
		return fmt.Errorf("sampling: checkpoint temp: %w", err)
	}
	tmp := f.Name()
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("sampling: write shard %d: %w", s.Index, err)
	}
	if err := gob.NewEncoder(f).Encode(s); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("sampling: write shard %d: %w", s.Index, err)
	}
	if err := os.Rename(tmp, shardPath(dir, s.Index)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("sampling: commit shard %d: %w", s.Index, err)
	}
	return nil
}

// readShard loads the shard of layout index i when present. ok is false when
// the shard does not exist; a shard recorded for a different layout name is
// an error (the checkpoint directory belongs to another run).
func readShard(dir string, i int, layoutName string) (shard, bool, error) {
	f, err := os.Open(shardPath(dir, i))
	if errors.Is(err, fs.ErrNotExist) {
		return shard{}, false, nil
	}
	if err != nil {
		return shard{}, false, fmt.Errorf("sampling: read shard %d: %w", i, err)
	}
	defer f.Close()
	var s shard
	if err := gob.NewDecoder(f).Decode(&s); err != nil {
		return shard{}, false, fmt.Errorf("sampling: decode shard %d: %w", i, err)
	}
	if s.Index != i || s.Layout != layoutName {
		return shard{}, false, fmt.Errorf(
			"sampling: shard %d belongs to layout %q at index %d, expected %q — stale checkpoint dir?",
			i, s.Layout, s.Index, layoutName)
	}
	if len(s.Imgs) != len(s.Scores) {
		return shard{}, false, fmt.Errorf("sampling: shard %d is inconsistent (%d images, %d scores)",
			i, len(s.Imgs), len(s.Scores))
	}
	return s, true, nil
}

// CheckpointShards reports how many of the n layout shards exist in dir —
// the resume progress a caller can surface to the operator.
func CheckpointShards(dir string, n int) int {
	count := 0
	for i := 0; i < n; i++ {
		if _, err := os.Stat(shardPath(dir, i)); err == nil {
			count++
		}
	}
	return count
}
