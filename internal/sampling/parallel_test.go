package sampling

import (
	"strings"
	"testing"

	"ldmo/internal/layout"
)

// TestBuildDatasetParallelBitIdentical checks the acceptance criterion for
// the training-label fan-out: building the dataset with a worker pool yields
// exactly the serial dataset — same sample order, scores, images, groups,
// and even the same progress log.
func TestBuildDatasetParallelBitIdentical(t *testing.T) {
	p := pool(t, 3)

	cfg := testConfig()
	cfg.Workers = 1
	var logS strings.Builder
	dsS, groupsS, err := BuildDataset(p, cfg, &logS)
	if err != nil {
		t.Fatal(err)
	}

	cfg.Workers = 4
	var logP strings.Builder
	dsP, groupsP, err := BuildDataset(p, cfg, &logP)
	if err != nil {
		t.Fatal(err)
	}

	if dsP.Len() != dsS.Len() {
		t.Fatalf("parallel dataset has %d samples, serial %d", dsP.Len(), dsS.Len())
	}
	for i := range dsS.Samples {
		a, b := dsS.Samples[i], dsP.Samples[i]
		if a.Score != b.Score {
			t.Fatalf("sample %d score %g, serial %g", i, b.Score, a.Score)
		}
		if a.Image.W != b.Image.W || a.Image.H != b.Image.H {
			t.Fatalf("sample %d image shape differs", i)
		}
		for j := range a.Image.Data {
			if a.Image.Data[j] != b.Image.Data[j] {
				t.Fatalf("sample %d pixel %d differs: %g vs %g", i, j, b.Image.Data[j], a.Image.Data[j])
			}
		}
	}
	if len(groupsP) != len(groupsS) {
		t.Fatalf("parallel groups %d, serial %d", len(groupsP), len(groupsS))
	}
	for g := range groupsS {
		if len(groupsP[g]) != len(groupsS[g]) {
			t.Fatalf("group %d size differs", g)
		}
		for j := range groupsS[g] {
			if groupsP[g][j] != groupsS[g][j] {
				t.Fatalf("group %d index %d differs", g, j)
			}
		}
	}
	if logP.String() != logS.String() {
		t.Fatalf("progress log diverged:\nparallel:\n%s\nserial:\n%s", logP.String(), logS.String())
	}
}

// TestBuildDatasetParallelError checks a failing layout surfaces the error
// under the pool just as it does serially.
func TestBuildDatasetParallelError(t *testing.T) {
	cfg := testConfig()
	cfg.Workers = 4
	bad := layout.Layout{Name: "empty"}
	if _, _, err := BuildDataset([]layout.Layout{bad}, cfg, nil); err == nil {
		t.Fatal("empty layout must error under the worker pool")
	}
}
