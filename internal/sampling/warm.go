package sampling

import (
	"context"
	"fmt"
	"io"

	"ldmo/internal/ilt"
	"ldmo/internal/layout"
	"ldmo/internal/model"
	"ldmo/internal/par"
)

// WarmPairConfig controls the warm-start training-pair harvest.
type WarmPairConfig struct {
	// PerLayout is how many decompositions are harvested per layout, taken
	// in the deterministic sampling order; <=0 selects 2. More pairs per
	// layout buy diversity in mask assignments, fewer buy more layouts per
	// ILT budget.
	PerLayout int
	// Size is the square field edge pairs are stored at; <=0 selects the
	// sampling config's ImageSize.
	Size int
}

// normalized applies the defaults against the owning sampling config.
func (w WarmPairConfig) normalized(cfg Config) WarmPairConfig {
	if w.PerLayout <= 0 {
		w.PerLayout = 2
	}
	if w.Size <= 0 {
		w.Size = cfg.ImageSize
	}
	return w
}

// BuildWarmPairs harvests (cold decomposition mask, ILT-optimized field)
// training pairs for the warm-start surrogate. It is BuildWarmPairsCtx
// without cancellation.
func BuildWarmPairs(layouts []layout.Layout, cfg Config, wcfg WarmPairConfig, log io.Writer) (*model.WarmDataset, error) {
	return BuildWarmPairsCtx(context.Background(), layouts, cfg, wcfg, log)
}

// BuildWarmPairsCtx runs the label extractor behind `ldmo-train -warmstart`:
// for each layout it samples decompositions exactly as dataset labeling
// does, runs the same full-budget ILT on the first PerLayout of them, and
// records the cold mask rasters next to the optimized continuous fields
// they converged to, everything box-resampled to the surrogate's field
// size. Layouts are harvested in parallel across cfg.Workers lanes and
// stitched in layout order, so the dataset is byte-identical at any worker
// count.
//
// The harvesting ILT always runs cold (any warm-start or early-stop
// settings on cfg.ILT are stripped): labels must stay fixed points of the
// cold optimizer, not of whatever surrogate happened to be active.
func BuildWarmPairsCtx(ctx context.Context, layouts []layout.Layout, cfg Config, wcfg WarmPairConfig, log io.Writer) (*model.WarmDataset, error) {
	if len(layouts) == 0 {
		return nil, fmt.Errorf("sampling: no layouts to harvest warm pairs from")
	}
	wcfg = wcfg.normalized(cfg)
	iltCfg := cfg.ILT
	iltCfg.AbortOnViolation = false // pairs need completed trajectories
	iltCfg.Init = nil
	iltCfg.ConvergeWindow = 0

	type harvested struct {
		pairs []model.WarmPair
		err   error
	}
	results := make([]harvested, len(layouts))
	pool := par.NewPool(cfg.Workers)
	_, cerr := pool.MapCtx(orBackground(ctx), len(layouts), func(_, li int) {
		l := layouts[li]
		cands, err := SampleDecompositions(l, cfg)
		if err != nil {
			results[li] = harvested{err: fmt.Errorf("sampling: warm pairs %s: %w", l.Name, err)}
			return
		}
		if len(cands) > wcfg.PerLayout {
			cands = cands[:wcfg.PerLayout]
		}
		opt, err := ilt.NewOptimizer(l, iltCfg)
		if err != nil {
			results[li] = harvested{err: fmt.Errorf("sampling: warm pairs %s: %w", l.Name, err)}
			return
		}
		res := opt.Config().Litho.Resolution
		s := wcfg.Size
		pairs := make([]model.WarmPair, 0, len(cands))
		for _, d := range cands {
			c1, c2 := d.Masks(res)
			r := opt.Run(d)
			pairs = append(pairs, model.WarmPair{
				Cold1: c1.Resample(s, s),
				Cold2: c2.Resample(s, s),
				Opt1:  r.M1.Resample(s, s),
				Opt2:  r.M2.Resample(s, s),
			})
		}
		results[li] = harvested{pairs: pairs}
	})
	if cerr != nil {
		return nil, fmt.Errorf("sampling: warm-pair harvest interrupted: %w", cerr)
	}
	ds := &model.WarmDataset{Size: wcfg.Size}
	for li, r := range results {
		if r.err != nil {
			return nil, r.err
		}
		ds.Pairs = append(ds.Pairs, r.pairs...)
		if log != nil {
			fmt.Fprintf(log, "warm pairs %3d/%d  %-12s  %d pairs\n",
				li+1, len(results), layouts[li].Name, len(r.pairs))
		}
	}
	return ds, nil
}
