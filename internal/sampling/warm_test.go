package sampling

import (
	"testing"
)

func TestBuildWarmPairsDeterministicAcrossWorkers(t *testing.T) {
	p := pool(t, 3)
	cfg := testConfig()
	wcfg := WarmPairConfig{PerLayout: 2, Size: 32}

	cfg.Workers = 1
	serial, err := BuildWarmPairs(p, cfg, wcfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 4
	par, err := BuildWarmPairs(p, cfg, wcfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if serial.Len() == 0 {
		t.Fatal("no pairs harvested")
	}
	if serial.Len() != par.Len() || serial.Size != par.Size {
		t.Fatalf("worker count changed harvest: %d/%d pairs, size %d/%d",
			serial.Len(), par.Len(), serial.Size, par.Size)
	}
	for i := range serial.Pairs {
		a, b := serial.Pairs[i], par.Pairs[i]
		for j := range a.Cold1.Data {
			if a.Cold1.Data[j] != b.Cold1.Data[j] || a.Cold2.Data[j] != b.Cold2.Data[j] ||
				a.Opt1.Data[j] != b.Opt1.Data[j] || a.Opt2.Data[j] != b.Opt2.Data[j] {
				t.Fatalf("pair %d differs between worker counts at %d", i, j)
			}
		}
	}
}

func TestBuildWarmPairsShapesAndProgress(t *testing.T) {
	p := pool(t, 2)
	cfg := testConfig()
	ds, err := BuildWarmPairs(p, cfg, WarmPairConfig{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Defaults: two pairs per layout (when the layout has that many
	// candidates), fields at the sampling image size.
	if ds.Size != cfg.ImageSize {
		t.Fatalf("pair size %d, want %d", ds.Size, cfg.ImageSize)
	}
	if ds.Len() == 0 || ds.Len() > 2*len(p) {
		t.Fatalf("harvested %d pairs from %d layouts", ds.Len(), len(p))
	}
	for i, pr := range ds.Pairs {
		if pr.Cold1.W != ds.Size || pr.Cold1.H != ds.Size ||
			pr.Opt2.W != ds.Size || pr.Opt2.H != ds.Size {
			t.Fatalf("pair %d not at field size: cold %dx%d opt %dx%d",
				i, pr.Cold1.W, pr.Cold1.H, pr.Opt2.W, pr.Opt2.H)
		}
		// The optimized field must differ from the cold raster: ILT moved
		// the masks.
		same := true
		for j := range pr.Cold1.Data {
			if pr.Cold1.Data[j] != pr.Opt1.Data[j] {
				same = false
				break
			}
		}
		if same {
			t.Fatalf("pair %d: optimized field identical to cold raster", i)
		}
	}
}
