// Package mst provides the minimum-spanning-tree machinery the decomposition
// generator builds on (paper §III-A): a union-find structure, Kruskal's
// algorithm over the SP pattern graph, connected components, and the
// alternating 2-coloring of each spanning tree that fixes the relative mask
// assignment of separated patterns.
package mst

import (
	"fmt"
	"sort"
)

// UnionFind is a disjoint-set forest with union by rank and path compression.
type UnionFind struct {
	parent []int
	rank   []int
	count  int // number of disjoint sets
}

// NewUnionFind returns a forest of n singleton sets.
func NewUnionFind(n int) *UnionFind {
	u := &UnionFind{parent: make([]int, n), rank: make([]int, n), count: n}
	for i := range u.parent {
		u.parent[i] = i
	}
	return u
}

// Find returns the canonical representative of x's set.
func (u *UnionFind) Find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

// Union merges the sets of a and b; it reports whether a merge happened
// (false when they were already joined).
func (u *UnionFind) Union(a, b int) bool {
	ra, rb := u.Find(a), u.Find(b)
	if ra == rb {
		return false
	}
	if u.rank[ra] < u.rank[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	if u.rank[ra] == u.rank[rb] {
		u.rank[ra]++
	}
	u.count--
	return true
}

// Connected reports whether a and b are in the same set.
func (u *UnionFind) Connected(a, b int) bool { return u.Find(a) == u.Find(b) }

// Count returns the number of disjoint sets.
func (u *UnionFind) Count() int { return u.count }

// Edge is a weighted undirected edge between vertex indices U and V.
type Edge struct {
	U, V int
	W    float64
}

// Forest is the result of a spanning-forest computation.
type Forest struct {
	N          int     // vertex count
	Edges      []Edge  // selected tree edges
	Weight     float64 // total selected weight
	Components []int   // component id per vertex, 0-based consecutive
	NumComp    int
}

// Kruskal computes a minimum spanning forest of the graph with n vertices
// and the given edge list. Disconnected graphs yield one tree per component.
// Ties are broken deterministically by (weight, U, V).
func Kruskal(n int, edges []Edge) Forest {
	for _, e := range edges {
		if e.U < 0 || e.U >= n || e.V < 0 || e.V >= n {
			panic(fmt.Sprintf("mst: edge (%d,%d) outside [0,%d)", e.U, e.V, n))
		}
	}
	sorted := append([]Edge(nil), edges...)
	sort.Slice(sorted, func(i, j int) bool {
		a, b := sorted[i], sorted[j]
		if a.W != b.W {
			return a.W < b.W
		}
		if a.U != b.U {
			return a.U < b.U
		}
		return a.V < b.V
	})
	uf := NewUnionFind(n)
	f := Forest{N: n}
	for _, e := range sorted {
		if e.U == e.V {
			continue
		}
		if uf.Union(e.U, e.V) {
			f.Edges = append(f.Edges, e)
			f.Weight += e.W
		}
	}
	// Densify component ids.
	idOf := make(map[int]int)
	f.Components = make([]int, n)
	for v := 0; v < n; v++ {
		root := uf.Find(v)
		id, ok := idOf[root]
		if !ok {
			id = len(idOf)
			idOf[root] = id
		}
		f.Components[v] = id
	}
	f.NumComp = len(idOf)
	return f
}

// TwoColor alternately colors each tree of the forest by BFS from the lowest
// vertex of each component, returning color 0/1 per vertex. Adjacent tree
// vertices get opposite colors: the relative mask assignment of SP patterns
// the paper derives from the MST. Flipping all colors of one component is
// the remaining degree of freedom (the component "factor" fed to the n-wise
// sampler).
func (f Forest) TwoColor() []int {
	adj := make([][]int, f.N)
	for _, e := range f.Edges {
		adj[e.U] = append(adj[e.U], e.V)
		adj[e.V] = append(adj[e.V], e.U)
	}
	color := make([]int, f.N)
	seen := make([]bool, f.N)
	var queue []int
	for s := 0; s < f.N; s++ {
		if seen[s] {
			continue
		}
		seen[s] = true
		color[s] = 0
		queue = append(queue[:0], s)
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range adj[u] {
				if !seen[v] {
					seen[v] = true
					color[v] = 1 - color[u]
					queue = append(queue, v)
				}
			}
		}
	}
	return color
}

// ComponentMembers groups vertex indices by component id.
func (f Forest) ComponentMembers() [][]int {
	out := make([][]int, f.NumComp)
	for v, c := range f.Components {
		out[c] = append(out[c], v)
	}
	return out
}
