package mst

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestUnionFindBasics(t *testing.T) {
	u := NewUnionFind(5)
	if u.Count() != 5 {
		t.Fatalf("count = %d", u.Count())
	}
	if !u.Union(0, 1) || !u.Union(1, 2) {
		t.Fatal("union failed")
	}
	if u.Union(0, 2) {
		t.Fatal("union of joined sets reported merge")
	}
	if !u.Connected(0, 2) || u.Connected(0, 3) {
		t.Fatal("connectivity wrong")
	}
	if u.Count() != 3 {
		t.Fatalf("count = %d, want 3", u.Count())
	}
}

func TestUnionFindInvariantsQuick(t *testing.T) {
	// Property: after any union sequence, Connected is an equivalence
	// relation consistent with the unions performed.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		u := NewUnionFind(n)
		ref := make([]int, n) // brute-force labels
		for i := range ref {
			ref[i] = i
		}
		for k := 0; k < 30; k++ {
			a, b := rng.Intn(n), rng.Intn(n)
			u.Union(a, b)
			la, lb := ref[a], ref[b]
			if la != lb {
				for i := range ref {
					if ref[i] == lb {
						ref[i] = la
					}
				}
			}
		}
		sets := map[int]bool{}
		for i := 0; i < n; i++ {
			sets[ref[i]] = true
			for j := 0; j < n; j++ {
				if u.Connected(i, j) != (ref[i] == ref[j]) {
					return false
				}
			}
		}
		return u.Count() == len(sets)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKruskalKnownGraph(t *testing.T) {
	// The paper's Fig. 3 style graph: weights pick the light edges.
	edges := []Edge{
		{0, 1, 75}, {1, 2, 78}, {0, 2, 60}, {2, 3, 76},
	}
	f := Kruskal(4, edges)
	if f.NumComp != 1 {
		t.Fatalf("components = %d", f.NumComp)
	}
	if f.Weight != 60+75+76 {
		t.Fatalf("weight = %g, want 211", f.Weight)
	}
	if len(f.Edges) != 3 {
		t.Fatalf("tree edges = %d", len(f.Edges))
	}
}

func TestKruskalDisconnected(t *testing.T) {
	f := Kruskal(5, []Edge{{0, 1, 1}, {1, 2, 2}, {3, 4, 1}})
	if f.NumComp != 2 {
		t.Fatalf("components = %d, want 2", f.NumComp)
	}
	if f.Components[0] != f.Components[2] || f.Components[0] == f.Components[3] {
		t.Fatalf("component ids = %v", f.Components)
	}
	members := f.ComponentMembers()
	if len(members) != 2 || len(members[0])+len(members[1]) != 5 {
		t.Fatalf("members = %v", members)
	}
}

func TestKruskalIsolatedVertices(t *testing.T) {
	f := Kruskal(3, nil)
	if f.NumComp != 3 || len(f.Edges) != 0 {
		t.Fatalf("forest = %+v", f)
	}
}

func TestKruskalSelfLoopIgnored(t *testing.T) {
	f := Kruskal(2, []Edge{{0, 0, 1}, {0, 1, 5}})
	if len(f.Edges) != 1 || f.Weight != 5 {
		t.Fatalf("forest = %+v", f)
	}
}

func TestKruskalPanicsOnBadEdge(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Kruskal(2, []Edge{{0, 5, 1}})
}

// bruteForceMSTWeight enumerates all spanning trees of a small connected
// graph via edge subsets.
func bruteForceMSTWeight(n int, edges []Edge) float64 {
	best := -1.0
	m := len(edges)
	for mask := 0; mask < 1<<m; mask++ {
		u := NewUnionFind(n)
		w := 0.0
		cnt := 0
		for i := 0; i < m; i++ {
			if mask&(1<<i) != 0 {
				u.Union(edges[i].U, edges[i].V)
				w += edges[i].W
				cnt++
			}
		}
		if u.Count() == 1 && cnt == n-1 && (best < 0 || w < best) {
			best = w
		}
	}
	return best
}

func TestKruskalMatchesBruteForceQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(4) // 3-6 vertices
		var edges []Edge
		// Ensure connectivity with a random spanning path, then add
		// extra random edges.
		perm := rng.Perm(n)
		for i := 1; i < n; i++ {
			edges = append(edges, Edge{perm[i-1], perm[i], float64(1 + rng.Intn(100))})
		}
		for k := 0; k < n; k++ {
			edges = append(edges, Edge{rng.Intn(n), rng.Intn(n), float64(1 + rng.Intn(100))})
		}
		var clean []Edge
		for _, e := range edges {
			if e.U != e.V {
				clean = append(clean, e)
			}
		}
		got := Kruskal(n, clean)
		want := bruteForceMSTWeight(n, clean)
		return got.Weight == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestTwoColorProperTree(t *testing.T) {
	f := Kruskal(6, []Edge{{0, 1, 1}, {1, 2, 1}, {2, 3, 1}, {4, 5, 1}})
	colors := f.TwoColor()
	for _, e := range f.Edges {
		if colors[e.U] == colors[e.V] {
			t.Fatalf("tree edge (%d,%d) monochromatic", e.U, e.V)
		}
	}
	for _, c := range colors {
		if c != 0 && c != 1 {
			t.Fatalf("color %d out of range", c)
		}
	}
}

func TestTwoColorQuick(t *testing.T) {
	// Property: for any random forest, TwoColor never gives a tree edge
	// matching endpoint colors.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(15)
		var edges []Edge
		for k := 0; k < n; k++ {
			edges = append(edges, Edge{rng.Intn(n), rng.Intn(n), rng.Float64() * 10})
		}
		forest := Kruskal(n, edges)
		colors := forest.TwoColor()
		for _, e := range forest.Edges {
			if colors[e.U] == colors[e.V] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestComponentIDsDense(t *testing.T) {
	f := Kruskal(6, []Edge{{0, 3, 1}, {1, 4, 1}})
	seen := map[int]bool{}
	for _, c := range f.Components {
		seen[c] = true
	}
	if len(seen) != f.NumComp {
		t.Fatalf("component ids not dense: %v", f.Components)
	}
	for c := range seen {
		if c < 0 || c >= f.NumComp {
			t.Fatalf("component id %d out of range", c)
		}
	}
}
