// Package litho implements the forward lithography model of the LDMO
// framework: a sum-of-coherent-systems (SOCS) aerial-image simulator with the
// paper's sigmoid mask and resist relaxations (Eq. 1-3 of Zhong et al.,
// DAC 2020) and the double-patterning image composition T = min(T1+T2, 1).
//
// The paper inherits the optical kernels of the ICCAD'17 unified framework
// (industrial Hopkins kernels). Those tables are proprietary, so this package
// substitutes a synthetic kernel bank built from Gaussian point-spread
// functions whose physical radius is set by the 193nm/NA=1.35 immersion
// process the paper targets. The ILT gradient structure is unchanged; see
// DESIGN.md, substitution table row 1.
package litho

import (
	"fmt"
	"math"
)

// Params collects the process constants of the simulator. All fields mirror
// either a constant named in the paper or a property of the substituted
// optical model.
type Params struct {
	// ThetaM is the slope of the sigmoid that relaxes the binary mask M
	// into the unbounded parameter P (paper Eq. 1). Paper value: 8.
	ThetaM float64
	// ThetaZ is the slope of the constant-threshold resist sigmoid
	// (paper Eq. 2). Paper value: 120.
	ThetaZ float64
	// Ith is the resist intensity threshold (paper Eq. 2). Paper value:
	// 0.039, quoted against the authors' unnormalized industrial kernels.
	Ith float64
	// Resolution is the raster resolution in nanometers per pixel.
	Resolution int
	// Sigma is the 1/e radius of the primary optical kernel in nanometers.
	// For 193nm immersion (NA 1.35) the point-spread half-width is about
	// k1*lambda/NA ~ 25-40nm.
	Sigma float64
	// DefocusSigma is the radius of the secondary (partial-coherence /
	// defocus tail) kernel in nanometers.
	DefocusSigma float64
	// DefocusWeight is the SOCS weight of the secondary kernel; the
	// primary kernel carries 1-DefocusWeight.
	DefocusWeight float64
	// Gain scales the kernel bank so that a fully exposed open field
	// reaches aerial intensity Gain (the exposure dose). Intensity is
	// linear in Gain, so threshold and gain can be rescaled together
	// without moving the printed contour; PaperParams uses this to apply
	// the paper's Ith = 0.039 verbatim.
	Gain float64
	// KernelSupport is the kernel truncation radius in units of the
	// larger sigma; 3 keeps >99.7% of the Gaussian mass.
	KernelSupport float64
	// PrintThreshold is the resist-image level above which a pixel counts
	// as printed when binarizing T. With the sigmoid resist model of
	// Eq. 2, 0.5 corresponds exactly to the aerial contour I = Ith.
	PrintThreshold float64
}

// DefaultParams returns the parameter set used by the experiments: the
// paper's sigmoid slopes over the calibrated synthetic kernel bank. The
// kernel widths and threshold were jointly calibrated so that (a) an
// isolated 65nm contact prints at drawn size, (b) a same-mask SP pair
// (65nm gap) bridges, and (c) same-mask VP pairs (95nm gap) leave residual
// edge distortion that 29 ILT iterations cannot fully remove — the spacing
// regime the paper's nmin/nmax bands describe.
func DefaultParams() Params {
	return Params{
		ThetaM:         8,
		ThetaZ:         120,
		Ith:            0.032,
		Resolution:     4,
		Sigma:          52,
		DefocusSigma:   73,
		DefocusWeight:  0.1,
		Gain:           1,
		KernelSupport:  3,
		PrintThreshold: 0.5,
	}
}

// FastParams returns a coarsened profile (8nm pixels) used for training-set
// labeling and quick tests; the optical radii are unchanged, only the raster
// is coarser, so print behaviour (bridging bands, edge placement) matches the
// default profile to within a pixel.
func FastParams() Params {
	p := DefaultParams()
	p.Resolution = 8
	return p
}

// PaperParams returns the constants exactly as printed in the paper:
// theta_m=8, theta_z=120, Ith=0.039. Aerial intensity scales linearly with
// Gain, so raising the gain by 0.039/0.032 places the printed contour
// exactly where DefaultParams puts it — the paper's threshold is used
// verbatim against a rescaled dose.
func PaperParams() Params {
	p := DefaultParams()
	p.Gain = 0.039 / p.Ith
	p.Ith = 0.039
	return p
}

// Validate reports the first problem with p, or nil.
func (p Params) Validate() error {
	switch {
	case p.ThetaM <= 0:
		return fmt.Errorf("litho: ThetaM must be positive, got %g", p.ThetaM)
	case p.ThetaZ <= 0:
		return fmt.Errorf("litho: ThetaZ must be positive, got %g", p.ThetaZ)
	case p.Ith <= 0:
		return fmt.Errorf("litho: Ith must be positive, got %g", p.Ith)
	case p.Resolution <= 0:
		return fmt.Errorf("litho: Resolution must be positive, got %d", p.Resolution)
	case p.Sigma <= 0:
		return fmt.Errorf("litho: Sigma must be positive, got %g", p.Sigma)
	case p.DefocusWeight < 0 || p.DefocusWeight >= 1:
		return fmt.Errorf("litho: DefocusWeight must be in [0,1), got %g", p.DefocusWeight)
	case p.DefocusWeight > 0 && p.DefocusSigma <= 0:
		return fmt.Errorf("litho: DefocusSigma must be positive when weighted, got %g", p.DefocusSigma)
	case p.Gain <= 0:
		return fmt.Errorf("litho: Gain must be positive, got %g", p.Gain)
	case p.KernelSupport <= 0:
		return fmt.Errorf("litho: KernelSupport must be positive, got %g", p.KernelSupport)
	case p.PrintThreshold <= 0 || p.PrintThreshold >= 1:
		return fmt.Errorf("litho: PrintThreshold must be in (0,1), got %g", p.PrintThreshold)
	}
	return nil
}

// MaskSigmoid applies the paper's Eq. 1 element-wise: M = 1/(1+exp(-tm*P)).
func MaskSigmoid(thetaM float64, p []float64, m []float64) {
	for i, v := range p {
		m[i] = 1 / (1 + math.Exp(-thetaM*v))
	}
}

// MaskSigmoidInverse recovers the unbounded parameter P from a mask value in
// (0,1): P = logit(M)/tm. Binary masks are clipped away from {0,1} first.
func MaskSigmoidInverse(thetaM float64, m []float64, p []float64) {
	const clip = 1e-4
	for i, v := range m {
		if v < clip {
			v = clip
		} else if v > 1-clip {
			v = 1 - clip
		}
		p[i] = math.Log(v/(1-v)) / thetaM
	}
}

// ResistSigmoid applies the paper's Eq. 2 element-wise:
// T = 1/(1+exp(-tz*(I-Ith))).
func ResistSigmoid(thetaZ, ith float64, aerial []float64, t []float64) {
	for i, v := range aerial {
		t[i] = 1 / (1 + math.Exp(-thetaZ*(v-ith)))
	}
}
