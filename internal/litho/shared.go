package litho

import (
	"os"
	"sync"

	"ldmo/internal/fft"
)

// simShared is the immutable, process-shared core of every simulator of one
// (process params, raster geometry, spectral mode) combination: the SOCS
// kernel bank, the convolution plan, and the transformed kernel spectra.
// Deriving these is the dominant cost of standing up a simulator (and with
// it an ILT optimizer); sharing them turns per-layout optimizer construction
// in the pipelined flow — and per-lane construction in OracleSelect — into
// buffer allocation only. All three fields are read-only after construction
// and therefore safe to share across any number of simulators and
// goroutines; mutable per-run state stays in the owning Simulator.
type simShared struct {
	bank  []Kernel
	plan  *fft.Plan
	kffts [][]complex128
}

var (
	sharedMu    sync.Mutex
	sharedCache = map[sharedKey]*simShared{}
)

// sharedKey identifies one shared resource set. Params is a plain value
// struct, so it is directly comparable; the spectral mode is part of the key
// because plans and kernel spectra of the two LDMO_FFT engines are not
// interchangeable.
type sharedKey struct {
	p           Params
	w, h        int
	complexMode bool
	asm         bool // fft vector engine (LDMO_FFT_ASM); plans are engine-specific
}

// sharedFor returns the shared kernel bank / plan / kernel-spectrum set for
// the geometry, building it on first use. The derivation is a pure function
// of the key, so a cached set is bit-identical to a freshly built one.
func sharedFor(p Params, w, h int) *simShared {
	key := sharedKey{p: p, w: w, h: h,
		complexMode: os.Getenv(fft.EnvMode) == fft.ModeComplex,
		asm:         fft.ASMEnabled()}
	sharedMu.Lock()
	defer sharedMu.Unlock()
	if s := sharedCache[key]; s != nil {
		return s
	}
	bank := BuildKernelBank(p)
	ks := MaxKernelSize(bank)
	plan := fft.PlanFor(w, h, ks, ks)
	kffts := make([][]complex128, len(bank))
	// Kernel transforms run through a throwaway scratch: the shared plan's
	// embedded scratch must stay untouched so concurrent holders of the
	// plan are never raced by a late cache fill.
	fs := plan.NewScratch()
	for i, k := range bank {
		kffts[i] = plan.TransformKernelWith(fs, padKernel(k, ks))
	}
	s := &simShared{bank: bank, plan: plan, kffts: kffts}
	sharedCache[key] = s
	return s
}
