package litho

import (
	"math/rand"
	"testing"

	"ldmo/internal/fft"
)

// TestSimulatorsShareImmutableCore: two simulators of the same geometry get
// the same plan and kernel spectra (pointer-identical), and still produce
// bitwise-identical images — sharing is a pure construction-cost optimization.
func TestSimulatorsShareImmutableCore(t *testing.T) {
	p := FastParams()
	a, err := NewSimulator(64, 64, p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSimulator(64, 64, p)
	if err != nil {
		t.Fatal(err)
	}
	if a.plan != b.plan {
		t.Fatal("same-geometry simulators built distinct plans")
	}
	for k := range a.kffts {
		if &a.kffts[k][0] != &b.kffts[k][0] {
			t.Fatalf("kernel %d spectrum not shared", k)
		}
	}
	rng := rand.New(rand.NewSource(11))
	mask := make([]float64, 64*64)
	for i := range mask {
		mask[i] = rng.Float64()
	}
	outA := make([]float64, len(mask))
	outB := make([]float64, len(mask))
	a.Aerial(mask, outA, nil)
	b.Aerial(mask, outB, nil)
	for i := range outA {
		if outA[i] != outB[i] {
			t.Fatalf("shared-core simulators diverge at %d: %v vs %v", i, outA[i], outB[i])
		}
	}
}

// TestSharedCacheKeyedByMode: the two spectral engines must not hand out each
// other's plans; the cache key includes the LDMO_FFT mode.
func TestSharedCacheKeyedByMode(t *testing.T) {
	p := FastParams()
	t.Setenv(fft.EnvMode, "")
	real1, err := NewSimulator(32, 32, p)
	if err != nil {
		t.Fatal(err)
	}
	t.Setenv(fft.EnvMode, fft.ModeComplex)
	cplx, err := NewSimulator(32, 32, p)
	if err != nil {
		t.Fatal(err)
	}
	if real1.plan == cplx.plan {
		t.Fatal("real and complex modes received the same shared plan")
	}
	if !real1.plan.RealMode() || cplx.plan.RealMode() {
		t.Fatalf("mode mismatch: real plan RealMode=%v, complex plan RealMode=%v",
			real1.plan.RealMode(), cplx.plan.RealMode())
	}
}
