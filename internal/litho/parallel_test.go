package litho

import (
	"math/rand"
	"sync"
	"testing"

	"ldmo/internal/simclock"
)

// newTestSim builds a simulator over the default two-kernel bank.
func newTestSim(t testing.TB, w, h, workers int) *Simulator {
	t.Helper()
	s, err := NewSimulator(w, h, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	s.SetWorkers(workers)
	return s
}

func randMask(rng *rand.Rand, n int) []float64 {
	m := make([]float64, n)
	for i := range m {
		m[i] = rng.Float64()
	}
	return m
}

// TestAerialParallelBitIdentical is the tentpole determinism guarantee:
// kernel-parallel Aerial and AerialBackward produce byte-identical images,
// fields, and gradients to the serial simulator.
func TestAerialParallelBitIdentical(t *testing.T) {
	const w, h = 48, 40
	rng := rand.New(rand.NewSource(61))
	mask := randMask(rng, w*h)
	gradI := randMask(rng, w*h)

	serial := newTestSim(t, w, h, 1)
	parallel := newTestSim(t, w, h, 4)
	if serial.Workers() != 1 {
		t.Fatalf("serial sim workers = %d", serial.Workers())
	}
	if parallel.Workers() < 2 {
		t.Skipf("bank of %d kernels cannot parallelize", parallel.KernelCount())
	}

	outS, outP := make([]float64, w*h), make([]float64, w*h)
	fS, fP := serial.NewFields(), parallel.NewFields()
	serial.Aerial(mask, outS, fS)
	parallel.Aerial(mask, outP, fP)
	for i := range outS {
		if outS[i] != outP[i] {
			t.Fatalf("aerial differs at %d: %g vs %g", i, outP[i], outS[i])
		}
	}
	for k := range fS.Amp {
		for i := range fS.Amp[k] {
			if fS.Amp[k][i] != fP.Amp[k][i] {
				t.Fatalf("field %d differs at %d", k, i)
			}
		}
	}

	// Without fields (the snapshot path) the image must also match.
	parallel.Aerial(mask, outP, nil)
	for i := range outS {
		if outS[i] != outP[i] {
			t.Fatalf("fieldless aerial differs at %d", i)
		}
	}

	gS, gP := make([]float64, w*h), make([]float64, w*h)
	serial.AerialBackward(gradI, fS, gS)
	parallel.AerialBackward(gradI, fP, gP)
	for i := range gS {
		if gS[i] != gP[i] {
			t.Fatalf("gradient differs at %d: %g vs %g", i, gP[i], gS[i])
		}
	}
}

// TestParallelClockCharges verifies convolution accounting is identical under
// kernel parallelism.
func TestParallelClockCharges(t *testing.T) {
	const w, h = 32, 32
	mask := randMask(rand.New(rand.NewSource(5)), w*h)
	out := make([]float64, w*h)
	for _, workers := range []int{1, 4} {
		s := newTestSim(t, w, h, workers)
		clock := simclock.New(simclock.DefaultModel())
		s.SetClock(clock)
		f := s.NewFields()
		s.Aerial(mask, out, f)
		s.AerialBackward(out, f, out)
		want := int64(2 * s.KernelCount())
		if got := clock.Count(simclock.CostConvolution); got != want {
			t.Fatalf("workers=%d: charged %d convolutions, want %d", workers, got, want)
		}
	}
}

// TestSetWorkersReconfigure exercises switching parallelism on a live
// simulator.
func TestSetWorkersReconfigure(t *testing.T) {
	const w, h = 16, 16
	s := newTestSim(t, w, h, 4)
	mask := randMask(rand.New(rand.NewSource(9)), w*h)
	a := make([]float64, w*h)
	b := make([]float64, w*h)
	s.Aerial(mask, a, nil)
	s.SetWorkers(1)
	s.Aerial(mask, b, nil)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("reconfigured simulator diverged at %d", i)
		}
	}
	if s.Workers() != 1 {
		t.Fatalf("workers = %d after SetWorkers(1)", s.Workers())
	}
}

// TestPooledSimulatorsSharedClockStress is the issue's race/stress test: N
// goroutines each drive their own kernel-parallel simulator through
// Aerial+AerialBackward while all charge one shared clock. Run under -race
// (scripts/ci.sh does); the assertion checks the shared accounting.
func TestPooledSimulatorsSharedClockStress(t *testing.T) {
	const (
		w, h   = 32, 32
		lanes  = 4
		rounds = 8
	)
	clock := simclock.New(simclock.DefaultModel())
	var wg sync.WaitGroup
	kernels := 0
	for lane := 0; lane < lanes; lane++ {
		sim := newTestSim(t, w, h, 2)
		sim.SetClock(clock)
		kernels = sim.KernelCount()
		rng := rand.New(rand.NewSource(int64(100 + lane)))
		mask := randMask(rng, w*h)
		wg.Add(1)
		go func(sim *Simulator, mask []float64) {
			defer wg.Done()
			out := make([]float64, w*h)
			grad := make([]float64, w*h)
			f := sim.NewFields()
			for r := 0; r < rounds; r++ {
				sim.Aerial(mask, out, f)
				sim.AerialBackward(out, f, grad)
			}
		}(sim, mask)
	}
	wg.Wait()
	want := int64(lanes * rounds * 2 * kernels)
	if got := clock.Count(simclock.CostConvolution); got != want {
		t.Fatalf("shared clock counted %d convolutions, want %d", got, want)
	}
}

func benchmarkSim(b *testing.B, workers int, backward bool) {
	const w, h = 224, 224
	s := newTestSim(b, w, h, workers)
	mask := randMask(rand.New(rand.NewSource(1)), w*h)
	out := make([]float64, w*h)
	grad := make([]float64, w*h)
	f := s.NewFields()
	s.Aerial(mask, out, f)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if backward {
			s.AerialBackward(out, f, grad)
		} else {
			s.Aerial(mask, out, f)
		}
	}
}

func BenchmarkAerial(b *testing.B)                 { benchmarkSim(b, 1, false) }
func BenchmarkAerialParallel(b *testing.B)         { benchmarkSim(b, 0, false) }
func BenchmarkAerialBackward(b *testing.B)         { benchmarkSim(b, 1, true) }
func BenchmarkAerialBackwardParallel(b *testing.B) { benchmarkSim(b, 0, true) }
