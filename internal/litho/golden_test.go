package litho

import (
	"math"
	"math/rand"
	"testing"

	"ldmo/internal/fft"
)

// engineSim builds a simulator under the given spectral engine mode
// ("" = real half-spectrum, fft.ModeComplex = reference path).
func engineSim(t *testing.T, mode string, w, h, workers int) *Simulator {
	t.Helper()
	t.Setenv(fft.EnvMode, mode)
	return newTestSim(t, w, h, workers)
}

// TestEngineGoldenFields is the field-level half of the golden-output
// contract: the real-input engine reproduces the complex reference engine's
// aerial images, per-kernel fields, resist images, and mask gradients to
// 1e-9 — tight enough that every thresholded flow decision downstream is
// unchanged (the decision-level half lives in ilt and core).
func TestEngineGoldenFields(t *testing.T) {
	const w, h = 52, 44
	rng := rand.New(rand.NewSource(77))
	mask := randMask(rng, w*h)
	gradT := randMask(rng, w*h)

	type eval struct {
		aerial, resist, gradMask []float64
		fields                   *Fields
	}
	run := func(mode string) eval {
		s := engineSim(t, mode, w, h, 1)
		e := eval{
			aerial:   make([]float64, w*h),
			resist:   make([]float64, w*h),
			gradMask: make([]float64, w*h),
			fields:   s.NewFields(),
		}
		s.Aerial(mask, e.aerial, e.fields)
		s.Resist(e.aerial, e.resist)
		gradI := make([]float64, w*h)
		s.ResistBackward(gradT, e.resist, gradI)
		s.AerialBackward(gradI, e.fields, e.gradMask)
		return e
	}
	ref := run(fft.ModeComplex)
	got := run("")

	cmp := func(name string, a, b []float64) {
		t.Helper()
		for i := range a {
			if d := math.Abs(a[i] - b[i]); d > 1e-9 {
				t.Fatalf("%s differs at %d by %g (real %g vs complex %g)", name, i, d, a[i], b[i])
			}
		}
	}
	cmp("aerial", got.aerial, ref.aerial)
	cmp("resist", got.resist, ref.resist)
	cmp("gradMask", got.gradMask, ref.gradMask)
	for k := range ref.fields.Amp {
		cmp("field", got.fields.Amp[k], ref.fields.Amp[k])
	}
}

// TestComplexEngineParallelBitIdentical keeps the reference engine under the
// same parallel-determinism guarantee as the default one (which
// TestAerialParallelBitIdentical covers): A/B runs may use any worker count.
func TestComplexEngineParallelBitIdentical(t *testing.T) {
	t.Setenv(fft.EnvMode, fft.ModeComplex)
	const w, h = 40, 36
	rng := rand.New(rand.NewSource(78))
	mask := randMask(rng, w*h)
	gradI := randMask(rng, w*h)

	serial := newTestSim(t, w, h, 1)
	parallel := newTestSim(t, w, h, 4)
	if parallel.Workers() < 2 {
		t.Skipf("bank of %d kernels cannot parallelize", parallel.KernelCount())
	}
	outS, outP := make([]float64, w*h), make([]float64, w*h)
	fS, fP := serial.NewFields(), parallel.NewFields()
	serial.Aerial(mask, outS, fS)
	parallel.Aerial(mask, outP, fP)
	gS, gP := make([]float64, w*h), make([]float64, w*h)
	serial.AerialBackward(gradI, fS, gS)
	parallel.AerialBackward(gradI, fP, gP)
	for i := range outS {
		if outS[i] != outP[i] || gS[i] != gP[i] {
			t.Fatalf("complex engine parallel run differs at %d", i)
		}
	}
}

// TestFusedBackwardMatchesDirectAdjoint checks the fused spectral gradient
// against the brute-force adjoint sum_k w_k * 2 * corr(h_k, gradI*amp_k)
// computed with DirectCorrelate.
func TestFusedBackwardMatchesDirectAdjoint(t *testing.T) {
	const w, h = 24, 20
	rng := rand.New(rand.NewSource(79))
	mask := randMask(rng, w*h)
	gradI := randMask(rng, w*h)

	s := engineSim(t, "", w, h, 1)
	fields := s.NewFields()
	aerial := make([]float64, w*h)
	s.Aerial(mask, aerial, fields)
	got := make([]float64, w*h)
	s.AerialBackward(gradI, fields, got)

	ks := MaxKernelSize(s.bank)
	want := make([]float64, w*h)
	weighted := make([]float64, w*h)
	tmp := make([]float64, w*h)
	for k, kern := range s.bank {
		for i := range weighted {
			weighted[i] = 2 * kern.Weight * gradI[i] * fields.Amp[k][i]
		}
		fft.DirectCorrelate(weighted, w, h, padKernel(kern, ks), ks, ks, tmp)
		for i := range want {
			want[i] += tmp[i]
		}
	}
	for i := range want {
		if d := math.Abs(got[i] - want[i]); d > 1e-9 {
			t.Fatalf("fused backward differs from direct adjoint at %d by %g", i, d)
		}
	}
}

// TestSimulatorHotPathZeroAlloc asserts the steady-state allocation contract
// of the ILT inner loop: once a simulator exists, the forward and adjoint
// evaluations allocate nothing.
func TestSimulatorHotPathZeroAlloc(t *testing.T) {
	const w, h = 48, 48
	rng := rand.New(rand.NewSource(80))
	mask := randMask(rng, w*h)
	gradI := randMask(rng, w*h)
	s := newTestSim(t, w, h, 1)
	fields := s.NewFields()
	aerial := make([]float64, w*h)
	gradMask := make([]float64, w*h)

	s.Aerial(mask, aerial, fields) // warm all lazy state
	if allocs := testing.AllocsPerRun(10, func() {
		s.Aerial(mask, aerial, fields)
	}); allocs != 0 {
		t.Errorf("Aerial allocates %.1f objects per call, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(10, func() {
		s.AerialBackward(gradI, fields, gradMask)
	}); allocs != 0 {
		t.Errorf("AerialBackward allocates %.1f objects per call, want 0", allocs)
	}
}
