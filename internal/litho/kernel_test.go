package litho

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGaussianKernelIsotropic(t *testing.T) {
	k := NewGaussianKernel(4, 3, 1)
	n := k.Size
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			// Rotating the kernel a quarter turn maps (x,y) to
			// (y, n-1-x); isotropy demands equality.
			if math.Abs(k.Data[y*n+x]-k.Data[(n-1-x)*n+y]) > 1e-15 {
				t.Fatalf("kernel not isotropic at (%d,%d)", x, y)
			}
		}
	}
}

func TestGaussianKernelMonotoneRadial(t *testing.T) {
	k := NewGaussianKernel(5, 3, 1)
	c := k.Size / 2
	for r := 1; r <= c; r++ {
		if k.Data[c*k.Size+c-r] > k.Data[c*k.Size+c-r+1] {
			continue
		}
		if k.Data[c*k.Size+c+r] >= k.Data[c*k.Size+c+r-1] {
			t.Fatalf("kernel not radially decreasing at r=%d", r)
		}
	}
}

func TestGaussianKernelPanicsOnBadSigma(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewGaussianKernel(0, 3, 1)
}

func TestPadKernelPreservesValues(t *testing.T) {
	k := NewGaussianKernel(2, 2, 1)
	padded := padKernel(k, k.Size+4)
	// Total mass unchanged.
	var sum float64
	for _, v := range padded {
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("padded sum = %g", sum)
	}
	// Center value unchanged.
	n := k.Size + 4
	if padded[(n/2)*n+n/2] != k.Data[(k.Size/2)*k.Size+k.Size/2] {
		t.Fatal("padding moved the kernel center")
	}
}

func TestPadKernelPanics(t *testing.T) {
	k := NewGaussianKernel(2, 2, 1)
	for _, size := range []int{k.Size - 2, k.Size + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("pad to %d did not panic", size)
				}
			}()
			padKernel(k, size)
		}()
	}
}

func TestAerialLinearInGainQuick(t *testing.T) {
	// Property: intensity scales linearly with Gain, the identity
	// PaperParams relies on to keep the printed contour fixed.
	base := FastParams()
	base.Sigma = 16
	base.DefocusWeight = 0
	simBase, err := NewSimulator(32, 32, base)
	if err != nil {
		t.Fatal(err)
	}
	mask := make([]float64, 32*32)
	for i := range mask {
		mask[i] = float64(i%5) / 5
	}
	ref := make([]float64, len(mask))
	simBase.Aerial(mask, ref, nil)

	f := func(raw uint8) bool {
		gain := 0.1 + float64(raw%40)/10 // [0.1, 4.0]
		p := base
		p.Gain = gain
		sim, err := NewSimulator(32, 32, p)
		if err != nil {
			return false
		}
		out := make([]float64, len(mask))
		sim.Aerial(mask, out, nil)
		for i := range out {
			if math.Abs(out[i]-gain*ref[i]) > 1e-9*(1+gain) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestMaxKernelSize(t *testing.T) {
	bank := []Kernel{NewGaussianKernel(2, 2, 0.5), NewGaussianKernel(4, 2, 0.5)}
	if got := MaxKernelSize(bank); got != bank[1].Size {
		t.Fatalf("max size = %d", got)
	}
	if MaxKernelSize(nil) != 0 {
		t.Fatal("empty bank max size")
	}
}
