package litho

import (
	"math"
	"math/rand"
	"testing"

	"ldmo/internal/geom"
	"ldmo/internal/grid"
	"ldmo/internal/simclock"
)

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
	if err := PaperParams().Validate(); err != nil {
		t.Fatalf("paper params invalid: %v", err)
	}
	bad := []func(*Params){
		func(p *Params) { p.ThetaM = 0 },
		func(p *Params) { p.ThetaZ = -1 },
		func(p *Params) { p.Ith = 0 },
		func(p *Params) { p.Resolution = 0 },
		func(p *Params) { p.Sigma = 0 },
		func(p *Params) { p.DefocusWeight = 1 },
		func(p *Params) { p.DefocusWeight = 0.1; p.DefocusSigma = 0 },
		func(p *Params) { p.Gain = 0 },
		func(p *Params) { p.KernelSupport = 0 },
		func(p *Params) { p.PrintThreshold = 1 },
	}
	for i, mut := range bad {
		p := DefaultParams()
		mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestMaskSigmoidRange(t *testing.T) {
	p := []float64{-100, -1, 0, 1, 100}
	m := make([]float64, len(p))
	MaskSigmoid(8, p, m)
	if m[2] != 0.5 {
		t.Fatalf("sigmoid(0) = %g", m[2])
	}
	for i, v := range m {
		if v < 0 || v > 1 {
			t.Fatalf("sigmoid out of range at %d: %g", i, v)
		}
	}
	if m[0] > 1e-6 || m[4] < 1-1e-6 {
		t.Fatal("sigmoid does not saturate")
	}
}

func TestMaskSigmoidInverseRoundTrip(t *testing.T) {
	m := []float64{0.1, 0.3, 0.5, 0.7, 0.9}
	p := make([]float64, len(m))
	back := make([]float64, len(m))
	MaskSigmoidInverse(8, m, p)
	MaskSigmoid(8, p, back)
	for i := range m {
		if math.Abs(back[i]-m[i]) > 1e-9 {
			t.Fatalf("roundtrip[%d] = %g want %g", i, back[i], m[i])
		}
	}
	// Binary values survive via clipping without infinities.
	MaskSigmoidInverse(8, []float64{0, 1}, p[:2])
	if math.IsInf(p[0], 0) || math.IsInf(p[1], 0) {
		t.Fatal("inverse produced infinities")
	}
}

func TestResistSigmoidThreshold(t *testing.T) {
	aerial := []float64{0.039}
	out := make([]float64, 1)
	ResistSigmoid(120, 0.039, aerial, out)
	if out[0] != 0.5 {
		t.Fatalf("resist at threshold = %g, want 0.5", out[0])
	}
}

func TestGaussianKernelNormalized(t *testing.T) {
	k := NewGaussianKernel(3, 3, 0.7)
	if k.Size%2 != 1 {
		t.Fatalf("even kernel size %d", k.Size)
	}
	sum := 0.0
	for _, v := range k.Data {
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("kernel sum = %g", sum)
	}
	if k.Weight != 0.7 {
		t.Fatalf("weight = %g", k.Weight)
	}
	// Peak at the center.
	c := (k.Size / 2) * k.Size // center row start
	peak := k.Data[c+k.Size/2]
	for _, v := range k.Data {
		if v > peak {
			t.Fatal("kernel peak not at center")
		}
	}
}

func TestBuildKernelBankWeights(t *testing.T) {
	p := DefaultParams()
	bank := BuildKernelBank(p)
	if len(bank) != 2 {
		t.Fatalf("bank size = %d", len(bank))
	}
	wsum := bank[0].Weight + bank[1].Weight
	if math.Abs(wsum-p.Gain) > 1e-12 {
		t.Fatalf("weights sum to %g, want gain %g", wsum, p.Gain)
	}
	p.DefocusWeight = 0
	if got := len(BuildKernelBank(p)); got != 1 {
		t.Fatalf("focused-only bank size = %d", got)
	}
}

func newSim(t *testing.T, w, h int) *Simulator {
	t.Helper()
	s, err := NewSimulator(w, h, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestOpenFieldIntensityEqualsGain(t *testing.T) {
	// The raster must be wide enough that the center pixel sees the full
	// kernel support of the widest (defocus) kernel.
	s := newSim(t, 128, 128)
	mask := make([]float64, 128*128)
	for i := range mask {
		mask[i] = 1
	}
	aerial := make([]float64, len(mask))
	s.Aerial(mask, aerial, nil)
	center := aerial[64*128+64]
	if math.Abs(center-s.P.Gain) > 1e-6 {
		t.Fatalf("open-field intensity = %g, want %g", center, s.P.Gain)
	}
}

func TestPaperParamsContourMatchesDefault(t *testing.T) {
	// PaperParams rescales gain and threshold together, so the printed
	// contour must be identical to DefaultParams'.
	mk := func(p Params) *grid.Grid {
		s, err := NewSimulator(128, 128, p)
		if err != nil {
			t.Fatal(err)
		}
		mask := grid.New(128, 128, p.Resolution, geom.Point{})
		mask.FillRect(geom.RectWH(223, 223, 65, 65), 1)
		return s.PrintedImage(mask).Threshold(p.PrintThreshold)
	}
	if !mk(DefaultParams()).Equal(mk(PaperParams()), 0) {
		t.Fatal("paper-params contour differs from default-params contour")
	}
}

func TestDarkFieldIntensityZero(t *testing.T) {
	s := newSim(t, 64, 64)
	aerial := make([]float64, 64*64)
	s.Aerial(make([]float64, 64*64), aerial, nil)
	for i, v := range aerial {
		if v != 0 {
			t.Fatalf("dark field nonzero at %d: %g", i, v)
		}
	}
}

func TestContactPrintsRoundAndCentered(t *testing.T) {
	// A 70nm contact at the window center must print as a single blob whose
	// peak is at the contact center.
	p := DefaultParams()
	s, err := NewSimulator(128, 128, p)
	if err != nil {
		t.Fatal(err)
	}
	mask := grid.New(128, 128, p.Resolution, geom.Point{})
	mask.FillRect(geom.RectWH(223, 223, 65, 65), 1) // centered at ~256nm = px 64
	printed := s.PrintedImage(mask)
	bin := printed.Threshold(p.PrintThreshold)
	_, n := bin.Components()
	if n != 1 {
		t.Fatalf("printed components = %d, want 1", n)
	}
	// Peak location.
	best, bi := -1.0, 0
	for i, v := range printed.Data {
		if v > best {
			best, bi = v, i
		}
	}
	px, py := bi%128, bi/128
	if px < 60 || px > 68 || py < 60 || py > 68 {
		t.Fatalf("printed peak at (%d,%d), want near (64,64)", px, py)
	}
	// Printed width along the center row must be close to drawn (70nm).
	x0, x1 := -1, -1
	for x := 0; x < 128; x++ {
		if bin.At(x, 64) > 0 {
			if x0 < 0 {
				x0 = x
			}
			x1 = x
		}
	}
	if wnm := (x1 - x0 + 1) * p.Resolution; wnm < 50 || wnm > 80 {
		t.Fatalf("printed width = %dnm, want ~65nm", wnm)
	}
}

func TestCloseContactsBridgeOnOneMask(t *testing.T) {
	// Two contacts below nmin on the same mask must merge into one printed
	// component; the same pair on separate masks must not.
	p := DefaultParams()
	s, err := NewSimulator(128, 128, p)
	if err != nil {
		t.Fatal(err)
	}
	const side = 65
	// Gap of 65nm (an SP pair at library pitch), centered in the window.
	a := geom.RectWH(158, 223, side, side)
	b := geom.RectWH(158+side+65, 223, side, side)

	same := grid.New(128, 128, p.Resolution, geom.Point{})
	same.FillRect(a, 1)
	same.FillRect(b, 1)
	bin := s.PrintedImage(same).Threshold(p.PrintThreshold)
	if _, n := bin.Components(); n != 1 {
		t.Fatalf("same-mask close contacts printed %d components, want 1 (bridge)", n)
	}

	m1 := grid.New(128, 128, p.Resolution, geom.Point{})
	m1.FillRect(a, 1)
	m2 := grid.New(128, 128, p.Resolution, geom.Point{})
	m2.FillRect(b, 1)
	t1 := s.PrintedImage(m1)
	t2 := s.PrintedImage(m2)
	comp := grid.NewLike(t1)
	ComposeDouble(t1.Data, t2.Data, comp.Data, nil)
	if _, n := comp.Threshold(p.PrintThreshold).Components(); n != 2 {
		t.Fatalf("split-mask close contacts printed %d components, want 2", n)
	}
}

func TestComposeDoubleClamp(t *testing.T) {
	t1 := []float64{0.3, 0.8, 0}
	t2 := []float64{0.3, 0.8, 0}
	out := make([]float64, 3)
	sat := make([]bool, 3)
	ComposeDouble(t1, t2, out, sat)
	if out[0] != 0.6 || out[1] != 1 || out[2] != 0 {
		t.Fatalf("compose = %v", out)
	}
	if sat[0] || !sat[1] || sat[2] {
		t.Fatalf("sat = %v", sat)
	}
}

func TestAerialBackwardMatchesNumericalGradient(t *testing.T) {
	// Verify d/dM of sum(gradI * I(M)) against central differences.
	p := DefaultParams()
	p.Sigma = 6
	p.DefocusSigma = 12
	s, err := NewSimulator(24, 24, p)
	if err != nil {
		t.Fatal(err)
	}
	n := 24 * 24
	rng := rand.New(rand.NewSource(1))
	mask := make([]float64, n)
	gradI := make([]float64, n)
	for i := range mask {
		mask[i] = rng.Float64()
		gradI[i] = rng.NormFloat64()
	}
	fields := s.NewFields()
	aerial := make([]float64, n)
	s.Aerial(mask, aerial, fields)
	gradM := make([]float64, n)
	s.AerialBackward(gradI, fields, gradM)

	loss := func(m []float64) float64 {
		a := make([]float64, n)
		s.Aerial(m, a, nil)
		sum := 0.0
		for i := range a {
			sum += gradI[i] * a[i]
		}
		return sum
	}
	const eps = 1e-5
	for _, idx := range []int{0, 13, 24*12 + 12, n - 1} {
		m2 := append([]float64(nil), mask...)
		m2[idx] += eps
		up := loss(m2)
		m2[idx] -= 2 * eps
		down := loss(m2)
		num := (up - down) / (2 * eps)
		if math.Abs(num-gradM[idx]) > 1e-5*(math.Abs(num)+1) {
			t.Fatalf("gradient mismatch at %d: analytic %g numeric %g", idx, gradM[idx], num)
		}
	}
}

func TestSimulatorClockCharges(t *testing.T) {
	s := newSim(t, 32, 32)
	clk := simclock.New(simclock.DefaultModel())
	s.SetClock(clk)
	mask := make([]float64, 32*32)
	out := make([]float64, 32*32)
	s.Aerial(mask, out, nil)
	if got := clk.Count(simclock.CostConvolution); got != int64(s.KernelCount()) {
		t.Fatalf("convolutions charged = %d, want %d", got, s.KernelCount())
	}
}

func TestNewSimulatorErrors(t *testing.T) {
	if _, err := NewSimulator(0, 10, DefaultParams()); err == nil {
		t.Fatal("expected raster error")
	}
	p := DefaultParams()
	p.Sigma = -1
	if _, err := NewSimulator(10, 10, p); err == nil {
		t.Fatal("expected params error")
	}
}

func BenchmarkAerial112(b *testing.B) {
	s, err := NewSimulator(112, 112, DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	mask := make([]float64, 112*112)
	for i := range mask {
		mask[i] = float64(i%7) / 7
	}
	out := make([]float64, len(mask))
	fields := s.NewFields()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Aerial(mask, out, fields)
	}
}
