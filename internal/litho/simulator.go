package litho

import (
	"fmt"

	"ldmo/internal/fft"
	"ldmo/internal/grid"
	"ldmo/internal/par"
	"ldmo/internal/simclock"
)

// Simulator evaluates the forward optical model on a fixed w x h raster and
// exposes the adjoint (backward) pass the ILT engine differentiates through.
// A Simulator is not safe for concurrent use; create one per goroutine. It
// may parallelize internally across its SOCS kernel bank (see SetWorkers):
// the mask's forward transform is computed once and shared, each worker lane
// owns its own inverse-FFT scratch and accumulation buffers, and the
// per-kernel contributions are reduced in fixed kernel order, so the output
// is bit-identical to the serial evaluation.
type Simulator struct {
	P       Params
	W, H    int
	bank    []Kernel
	plan    *fft.Plan
	fs      *fft.Scratch // the serial lane's transform workspace
	kffts   [][]complex128
	field   []float64    // scratch: amplitude field of the current kernel
	acc     []float64    // scratch: gradient accumulation
	specAcc []complex128 // scratch: fused spectral gradient accumulator
	clock   *simclock.Clock

	workers int       // kernel-level parallelism (1 = serial)
	pool    *par.Pool // lazily built with the lane scratch below
	lanes   []*simLane
	kbuf    [][]float64    // per-kernel field scratch for the parallel paths
	kspec   [][]complex128 // per-kernel spectral scratch (fused parallel backward)
}

// simLane is the worker-owned scratch of one kernel-parallel lane.
type simLane struct {
	fs  *fft.Scratch
	acc []float64
}

// NewSimulator builds a simulator for a w x h raster under params p. Kernel
// parallelism defaults to min(par.Workers(), kernel count); SetWorkers
// overrides it.
func NewSimulator(w, h int, p Params) (*Simulator, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("litho: invalid raster %dx%d", w, h)
	}
	// The kernel bank, convolution plan, and kernel spectra are immutable and
	// identical for every simulator of this (params, raster, mode) tuple, so
	// they come from the process-wide cache; only mutable scratch is owned.
	sh := sharedFor(p, w, h)
	s := &Simulator{
		P: p, W: w, H: h, bank: sh.bank, plan: sh.plan, fs: sh.plan.NewScratch(), kffts: sh.kffts,
		field: make([]float64, w*h), acc: make([]float64, w*h),
		specAcc: make([]complex128, sh.plan.SpecLen()),
	}
	s.SetWorkers(0)
	return s, nil
}

// SetClock attaches a deterministic cost clock; every kernel convolution is
// charged to it. A nil clock disables accounting. The clock is mutex-guarded,
// so one clock may be shared across many pooled simulators.
func (s *Simulator) SetClock(c *simclock.Clock) { s.clock = c }

// SetWorkers sets the kernel-level parallelism: n lanes convolve the bank
// concurrently (n <= 0 selects par.Workers()). The count is capped at the
// kernel count; 1 runs the plain serial loop. Output is bit-identical either
// way.
func (s *Simulator) SetWorkers(n int) {
	if n <= 0 {
		n = par.Workers()
	}
	if n > len(s.bank) {
		n = len(s.bank)
	}
	if n < 1 {
		n = 1
	}
	if n == s.workers {
		return
	}
	s.workers = n
	s.pool = nil
	s.lanes = nil
	s.kbuf = nil
	s.kspec = nil
}

// Workers returns the kernel-level parallelism in effect.
func (s *Simulator) Workers() int { return s.workers }

// ensurePar lazily builds the pool, the per-lane scratch, and the per-kernel
// field buffers the parallel paths need.
func (s *Simulator) ensurePar() {
	if s.pool != nil {
		return
	}
	s.pool = par.NewPool(s.workers)
	s.lanes = make([]*simLane, s.workers)
	for i := range s.lanes {
		s.lanes[i] = &simLane{fs: s.plan.NewScratch(), acc: make([]float64, s.W*s.H)}
	}
	s.kbuf = make([][]float64, len(s.bank))
	for i := range s.kbuf {
		s.kbuf[i] = make([]float64, s.W*s.H)
	}
	if s.plan.RealMode() {
		s.kspec = make([][]complex128, len(s.bank))
		for i := range s.kspec {
			s.kspec[i] = make([]complex128, s.plan.SpecLen())
		}
	}
}

// KernelCount returns the number of SOCS kernels in the bank.
func (s *Simulator) KernelCount() int { return len(s.bank) }

// Fields holds the per-kernel amplitude fields (M (x) h_k) of one forward
// evaluation; the adjoint pass needs them, so Aerial hands them back.
type Fields struct {
	Amp [][]float64 // one w*h field per kernel
}

// NewFields allocates a Fields workspace matching s.
func (s *Simulator) NewFields() *Fields {
	f := &Fields{Amp: make([][]float64, len(s.bank))}
	for i := range f.Amp {
		f.Amp[i] = make([]float64, s.W*s.H)
	}
	return f
}

// Aerial computes the SOCS aerial image I = sum_k w_k (mask (x) h_k)^2 into
// out and stores the per-kernel amplitude fields into fields (which may be
// nil when no backward pass will follow).
func (s *Simulator) Aerial(mask []float64, out []float64, fields *Fields) {
	if len(mask) != s.W*s.H || len(out) != s.W*s.H {
		panic(fmt.Sprintf("litho: mask/out length %d/%d != %dx%d", len(mask), len(out), s.W, s.H))
	}
	for i := range out {
		out[i] = 0
	}
	// The mask transform is shared by every kernel, computed once into the
	// simulator's own scratch. The plan itself is process-shared, so only
	// *With methods with simulator-owned scratch may run on it.
	spec := s.plan.ForwardInto(s.fs, mask)
	if s.workers > 1 && len(s.bank) > 1 {
		s.ensurePar()
		s.pool.Map(len(s.bank), func(lane, k int) {
			dst := s.kbuf[k]
			if fields != nil {
				dst = fields.Amp[k]
			}
			s.plan.ApplySpecWith(s.lanes[lane].fs, spec, s.kffts[k], dst, false)
			s.clock.Charge(simclock.CostConvolution, 1)
		})
		// Reduce in fixed kernel order: the per-pixel additions happen in
		// exactly the serial loop's sequence.
		for k := range s.bank {
			dst := s.kbuf[k]
			if fields != nil {
				dst = fields.Amp[k]
			}
			w := s.bank[k].Weight
			for i, a := range dst {
				out[i] += w * a * a
			}
		}
		return
	}
	for k := range s.bank {
		dst := s.field
		if fields != nil {
			dst = fields.Amp[k]
		}
		s.plan.ApplySpecWith(s.fs, spec, s.kffts[k], dst, false)
		s.clock.Charge(simclock.CostConvolution, 1)
		w := s.bank[k].Weight
		for i, a := range dst {
			out[i] += w * a * a
		}
	}
}

// AerialBackward accumulates into gradMask the adjoint of Aerial: given
// gradI = dL/dI it computes dL/dMask = sum_k w_k * 2 * corr(h_k, gradI *
// amp_k). fields must come from the matching forward Aerial call. gradMask
// is overwritten, not accumulated into.
//
// On the real-input spectral path the per-kernel correlations are fused in
// the frequency domain: each kernel contributes one forward transform of its
// weighted field, the products with conj(K_k) accumulate into a single
// half-spectrum, and one inverse transform produces the whole gradient —
// K+1 transforms per call instead of the 2K of the kernel-by-kernel adjoint.
// The complex reference path (LDMO_FFT=complex) keeps the kernel-by-kernel
// form, preserving the pre-overhaul engine for A/B comparison. Either way
// the parallel reduction runs in fixed kernel order, so the output is
// bit-identical to the serial evaluation at any worker count.
func (s *Simulator) AerialBackward(gradI []float64, fields *Fields, gradMask []float64) {
	if fields == nil {
		panic("litho: AerialBackward requires fields from Aerial")
	}
	if s.plan.RealMode() {
		s.aerialBackwardFused(gradI, fields, gradMask)
		return
	}
	for i := range gradMask {
		gradMask[i] = 0
	}
	if s.workers > 1 && len(s.bank) > 1 {
		s.ensurePar()
		s.pool.Map(len(s.bank), func(lane, k int) {
			ln := s.lanes[lane]
			w := s.bank[k].Weight
			amp := fields.Amp[k]
			for i := range ln.acc {
				ln.acc[i] = 2 * w * gradI[i] * amp[i]
			}
			s.plan.CorrelateWith(ln.fs, ln.acc, s.kffts[k], s.kbuf[k])
			s.clock.Charge(simclock.CostConvolution, 1)
		})
		for k := range s.bank {
			f := s.kbuf[k]
			for i := range gradMask {
				gradMask[i] += f[i]
			}
		}
		return
	}
	for k := range s.bank {
		w := s.bank[k].Weight
		amp := fields.Amp[k]
		for i := range s.acc {
			s.acc[i] = 2 * w * gradI[i] * amp[i]
		}
		s.plan.CorrelateWith(s.fs, s.acc, s.kffts[k], s.field)
		s.clock.Charge(simclock.CostConvolution, 1)
		for i := range gradMask {
			gradMask[i] += s.field[i]
		}
	}
}

// aerialBackwardFused is the spectral-domain gradient accumulation. The
// clock still charges one convolution per kernel so deterministic model
// seconds stay comparable across engine modes.
func (s *Simulator) aerialBackwardFused(gradI []float64, fields *Fields, gradMask []float64) {
	acc := s.specAcc
	for i := range acc {
		acc[i] = 0
	}
	if s.workers > 1 && len(s.bank) > 1 {
		s.ensurePar()
		s.pool.Map(len(s.bank), func(lane, k int) {
			ln := s.lanes[lane]
			w := s.bank[k].Weight
			amp := fields.Amp[k]
			for i := range ln.acc {
				ln.acc[i] = 2 * w * gradI[i] * amp[i]
			}
			spec := s.plan.ForwardInto(ln.fs, ln.acc)
			fft.MulConj(s.kspec[k], spec, s.kffts[k])
			s.clock.Charge(simclock.CostConvolution, 1)
		})
		// Reduce in fixed kernel order: the same per-bin additions, in the
		// same sequence, as the serial accumulation below.
		for k := range s.bank {
			ks := s.kspec[k]
			for i := range acc {
				acc[i] += ks[i]
			}
		}
	} else {
		for k := range s.bank {
			w := s.bank[k].Weight
			amp := fields.Amp[k]
			for i := range s.acc {
				s.acc[i] = 2 * w * gradI[i] * amp[i]
			}
			spec := s.plan.ForwardInto(s.fs, s.acc)
			fft.AccumulateConj(acc, spec, s.kffts[k])
			s.clock.Charge(simclock.CostConvolution, 1)
		}
	}
	s.plan.InverseSpec(s.fs, acc, gradMask)
}

// Resist applies the constant-threshold resist sigmoid (Eq. 2) to an aerial
// image.
func (s *Simulator) Resist(aerial []float64, out []float64) {
	ResistSigmoid(s.P.ThetaZ, s.P.Ith, aerial, out)
}

// ResistBackward converts dL/dT into dL/dI for the sigmoid resist:
// dT/dI = tz * T * (1-T). It overwrites gradI.
func (s *Simulator) ResistBackward(gradT, t []float64, gradI []float64) {
	tz := s.P.ThetaZ
	for i := range gradI {
		gradI[i] = gradT[i] * tz * t[i] * (1 - t[i])
	}
}

// PrintedImage runs the full single-mask forward model (aerial + resist) and
// returns the resist image as a grid matching g's raster geometry.
func (s *Simulator) PrintedImage(mask *grid.Grid) *grid.Grid {
	if mask.W != s.W || mask.H != s.H {
		panic(fmt.Sprintf("litho: mask raster %dx%d != simulator %dx%d", mask.W, mask.H, s.W, s.H))
	}
	aerial := make([]float64, s.W*s.H)
	s.Aerial(mask.Data, aerial, nil)
	out := grid.NewLike(mask)
	s.Resist(aerial, out.Data)
	return out
}

// ComposeDouble writes the double-patterning printed image
// T = min(T1+T2, 1) (Eq. 3) into out, and returns, via the boolean raster
// sat, which pixels were clamped (the gradient is zero there).
func ComposeDouble(t1, t2, out []float64, sat []bool) {
	for i := range out {
		v := t1[i] + t2[i]
		if v > 1 {
			out[i] = 1
			if sat != nil {
				sat[i] = true
			}
		} else {
			out[i] = v
			if sat != nil {
				sat[i] = false
			}
		}
	}
}
