package litho

import (
	"fmt"
	"math"
)

// Kernel is one coherent system of the SOCS decomposition: a real-valued
// point-spread function with an intensity weight. The aerial image is
// I = sum_k Weight_k * (M (x) Data_k)^2.
type Kernel struct {
	Size   int       // odd edge length in pixels
	Data   []float64 // Size x Size row-major amplitude PSF
	Weight float64   // SOCS intensity weight
}

// NewGaussianKernel builds an amplitude PSF exp(-r^2/(2 sigma^2)) truncated
// at radius support*sigma, normalized so its amplitude sum is 1 (open-field
// amplitude response 1). sigmaPx is in pixels.
func NewGaussianKernel(sigmaPx, support float64, weight float64) Kernel {
	if sigmaPx <= 0 {
		panic(fmt.Sprintf("litho: sigmaPx must be positive, got %g", sigmaPx))
	}
	r := int(math.Ceil(sigmaPx * support))
	if r < 1 {
		r = 1
	}
	size := 2*r + 1
	data := make([]float64, size*size)
	sum := 0.0
	for y := -r; y <= r; y++ {
		for x := -r; x <= r; x++ {
			v := math.Exp(-float64(x*x+y*y) / (2 * sigmaPx * sigmaPx))
			data[(y+r)*size+(x+r)] = v
			sum += v
		}
	}
	for i := range data {
		data[i] /= sum
	}
	return Kernel{Size: size, Data: data, Weight: weight}
}

// BuildKernelBank constructs the SOCS bank for p: a primary focus kernel and,
// when DefocusWeight > 0, a wider defocus/partial-coherence kernel. Weights
// are scaled so the open-field aerial intensity equals p.Gain.
func BuildKernelBank(p Params) []Kernel {
	sigmaPx := p.Sigma / float64(p.Resolution)
	bank := []Kernel{NewGaussianKernel(sigmaPx, p.KernelSupport, (1-p.DefocusWeight)*p.Gain)}
	if p.DefocusWeight > 0 {
		dsPx := p.DefocusSigma / float64(p.Resolution)
		bank = append(bank, NewGaussianKernel(dsPx, p.KernelSupport, p.DefocusWeight*p.Gain))
	}
	return bank
}

// MaxKernelSize returns the largest edge length in the bank.
func MaxKernelSize(bank []Kernel) int {
	m := 0
	for _, k := range bank {
		if k.Size > m {
			m = k.Size
		}
	}
	return m
}

// padKernel embeds k.Data centered inside a size x size raster (size >=
// k.Size, both odd) so all kernels of a bank share one FFT plan.
func padKernel(k Kernel, size int) []float64 {
	if size == k.Size {
		return k.Data
	}
	if size < k.Size || size%2 == 0 {
		panic(fmt.Sprintf("litho: cannot pad kernel %d to %d", k.Size, size))
	}
	out := make([]float64, size*size)
	off := (size - k.Size) / 2
	for y := 0; y < k.Size; y++ {
		copy(out[(y+off)*size+off:(y+off)*size+off+k.Size], k.Data[y*k.Size:(y+1)*k.Size])
	}
	return out
}
