// Package geom provides the integer-nanometer planar geometry primitives used
// throughout the LDMO framework: points, rectangles and polygons with the
// distance and overlap predicates that layout decomposition and lithography
// simulation rely on.
//
// All coordinates are integers in nanometers. Rectangles are half-open in
// neither direction: a Rect covers [X0,X1] x [Y0,Y1] inclusive of its edges
// for the purposes of distance computation, and rasterization decides pixel
// ownership separately (see package grid).
package geom

import (
	"fmt"
	"math"
)

// Point is a location on the layout plane, in nanometers.
type Point struct {
	X, Y int
}

// Add returns p translated by q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p minus q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Dist returns the Euclidean distance between p and q in nanometers.
func (p Point) Dist(q Point) float64 {
	dx := float64(p.X - q.X)
	dy := float64(p.Y - q.Y)
	return math.Hypot(dx, dy)
}

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%d,%d)", p.X, p.Y) }

// Rect is an axis-aligned rectangle with X0 <= X1 and Y0 <= Y1,
// in nanometers. The zero Rect is a degenerate point at the origin.
type Rect struct {
	X0, Y0, X1, Y1 int
}

// NewRect builds a normalized rectangle from two corner points in any order.
func NewRect(x0, y0, x1, y1 int) Rect {
	if x0 > x1 {
		x0, x1 = x1, x0
	}
	if y0 > y1 {
		y0, y1 = y1, y0
	}
	return Rect{x0, y0, x1, y1}
}

// RectWH builds a rectangle from its lower-left corner and a width/height.
func RectWH(x, y, w, h int) Rect { return NewRect(x, y, x+w, y+h) }

// W returns the width of r in nanometers.
func (r Rect) W() int { return r.X1 - r.X0 }

// H returns the height of r in nanometers.
func (r Rect) H() int { return r.Y1 - r.Y0 }

// Area returns the area of r in square nanometers.
func (r Rect) Area() int { return r.W() * r.H() }

// Center returns the center of r, rounded toward the lower-left on odd spans.
func (r Rect) Center() Point { return Point{(r.X0 + r.X1) / 2, (r.Y0 + r.Y1) / 2} }

// Translate returns r shifted by (dx, dy).
func (r Rect) Translate(dx, dy int) Rect {
	return Rect{r.X0 + dx, r.Y0 + dy, r.X1 + dx, r.Y1 + dy}
}

// Inflate grows r by d on every side (shrinks for negative d). The result is
// normalized, so over-shrinking collapses to a degenerate rectangle at the
// center rather than producing an inverted one.
func (r Rect) Inflate(d int) Rect {
	return NewRect(r.X0-d, r.Y0-d, r.X1+d, r.Y1+d)
}

// Empty reports whether r has zero area.
func (r Rect) Empty() bool { return r.X0 >= r.X1 || r.Y0 >= r.Y1 }

// Contains reports whether p lies inside r (edges inclusive).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.X0 && p.X <= r.X1 && p.Y >= r.Y0 && p.Y <= r.Y1
}

// Overlaps reports whether r and s share interior or boundary points.
func (r Rect) Overlaps(s Rect) bool {
	return r.X0 <= s.X1 && s.X0 <= r.X1 && r.Y0 <= s.Y1 && s.Y0 <= r.Y1
}

// Union returns the smallest rectangle containing both r and s.
func (r Rect) Union(s Rect) Rect {
	return Rect{
		min(r.X0, s.X0), min(r.Y0, s.Y0),
		max(r.X1, s.X1), max(r.Y1, s.Y1),
	}
}

// Intersect returns the overlap of r and s and whether it is nonempty.
func (r Rect) Intersect(s Rect) (Rect, bool) {
	out := Rect{
		max(r.X0, s.X0), max(r.Y0, s.Y0),
		min(r.X1, s.X1), min(r.Y1, s.Y1),
	}
	if out.X0 > out.X1 || out.Y0 > out.Y1 {
		return Rect{}, false
	}
	return out, true
}

// Dist returns the minimum Euclidean edge-to-edge distance between r and s in
// nanometers. Touching or overlapping rectangles have distance 0. This is the
// spacing measure the paper's SP/VP/NP classification (Eq. 6) applies against
// the nmin/nmax interaction bands.
func (r Rect) Dist(s Rect) float64 {
	dx := axisGap(r.X0, r.X1, s.X0, s.X1)
	dy := axisGap(r.Y0, r.Y1, s.Y0, s.Y1)
	switch {
	case dx == 0:
		return float64(dy)
	case dy == 0:
		return float64(dx)
	default:
		return math.Hypot(float64(dx), float64(dy))
	}
}

// CenterDist returns the Euclidean distance between the centers of r and s.
func (r Rect) CenterDist(s Rect) float64 { return r.Center().Dist(s.Center()) }

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("[%d,%d %d,%d]", r.X0, r.Y0, r.X1, r.Y1)
}

// axisGap returns the 1-D gap between intervals [a0,a1] and [b0,b1],
// or 0 when they overlap or touch.
func axisGap(a0, a1, b0, b1 int) int {
	switch {
	case b0 > a1:
		return b0 - a1
	case a0 > b1:
		return a0 - b1
	default:
		return 0
	}
}

// BoundingBox returns the union of all rects; ok is false for an empty input.
func BoundingBox(rects []Rect) (bb Rect, ok bool) {
	if len(rects) == 0 {
		return Rect{}, false
	}
	bb = rects[0]
	for _, r := range rects[1:] {
		bb = bb.Union(r)
	}
	return bb, true
}

// Polygon is a closed rectilinear polygon given by its vertex loop. It is
// used for printed-contour reporting; masks themselves stay rectangle lists.
type Polygon struct {
	Pts []Point
}

// BBox returns the bounding box of the polygon and whether it has vertices.
func (pg Polygon) BBox() (Rect, bool) {
	if len(pg.Pts) == 0 {
		return Rect{}, false
	}
	bb := Rect{pg.Pts[0].X, pg.Pts[0].Y, pg.Pts[0].X, pg.Pts[0].Y}
	for _, p := range pg.Pts[1:] {
		bb.X0 = min(bb.X0, p.X)
		bb.Y0 = min(bb.Y0, p.Y)
		bb.X1 = max(bb.X1, p.X)
		bb.Y1 = max(bb.Y1, p.Y)
	}
	return bb, true
}

// Area returns the unsigned area of the polygon via the shoelace formula.
func (pg Polygon) Area() float64 {
	n := len(pg.Pts)
	if n < 3 {
		return 0
	}
	sum := 0
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		sum += pg.Pts[i].X*pg.Pts[j].Y - pg.Pts[j].X*pg.Pts[i].Y
	}
	return math.Abs(float64(sum)) / 2
}
