package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewRectNormalizes(t *testing.T) {
	r := NewRect(10, 20, 3, 5)
	if r.X0 != 3 || r.Y0 != 5 || r.X1 != 10 || r.Y1 != 20 {
		t.Fatalf("NewRect did not normalize: %v", r)
	}
}

func TestRectWH(t *testing.T) {
	r := RectWH(5, 7, 30, 40)
	if r.W() != 30 || r.H() != 40 {
		t.Fatalf("got w=%d h=%d", r.W(), r.H())
	}
	if r.Area() != 1200 {
		t.Fatalf("area = %d, want 1200", r.Area())
	}
}

func TestCenter(t *testing.T) {
	r := NewRect(0, 0, 10, 20)
	if c := r.Center(); c != (Point{5, 10}) {
		t.Fatalf("center = %v", c)
	}
}

func TestTranslate(t *testing.T) {
	r := NewRect(1, 2, 3, 4).Translate(10, 20)
	if r != (Rect{11, 22, 13, 24}) {
		t.Fatalf("translate = %v", r)
	}
}

func TestInflate(t *testing.T) {
	r := NewRect(10, 10, 20, 20)
	if g := r.Inflate(5); g != (Rect{5, 5, 25, 25}) {
		t.Fatalf("inflate = %v", g)
	}
	// Over-shrink collapses but stays normalized.
	s := r.Inflate(-8)
	if s.X0 > s.X1 || s.Y0 > s.Y1 {
		t.Fatalf("over-shrunk rect not normalized: %v", s)
	}
}

func TestContains(t *testing.T) {
	r := NewRect(0, 0, 10, 10)
	cases := []struct {
		p    Point
		want bool
	}{
		{Point{5, 5}, true},
		{Point{0, 0}, true},   // corner inclusive
		{Point{10, 10}, true}, // corner inclusive
		{Point{11, 5}, false},
		{Point{-1, 5}, false},
	}
	for _, c := range cases {
		if got := r.Contains(c.p); got != c.want {
			t.Errorf("Contains(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestOverlaps(t *testing.T) {
	a := NewRect(0, 0, 10, 10)
	if !a.Overlaps(NewRect(5, 5, 15, 15)) {
		t.Error("expected overlap")
	}
	if !a.Overlaps(NewRect(10, 0, 20, 10)) {
		t.Error("touching rects should overlap (edge-inclusive)")
	}
	if a.Overlaps(NewRect(11, 0, 20, 10)) {
		t.Error("disjoint rects should not overlap")
	}
}

func TestIntersect(t *testing.T) {
	a := NewRect(0, 0, 10, 10)
	got, ok := a.Intersect(NewRect(5, 5, 15, 15))
	if !ok || got != (Rect{5, 5, 10, 10}) {
		t.Fatalf("intersect = %v ok=%v", got, ok)
	}
	if _, ok := a.Intersect(NewRect(20, 20, 30, 30)); ok {
		t.Fatal("disjoint intersect should be empty")
	}
}

func TestRectDist(t *testing.T) {
	a := NewRect(0, 0, 10, 10)
	cases := []struct {
		b    Rect
		want float64
	}{
		{NewRect(5, 5, 15, 15), 0},                        // overlap
		{NewRect(10, 0, 20, 10), 0},                       // touch
		{NewRect(15, 0, 25, 10), 5},                       // horizontal gap
		{NewRect(0, 17, 10, 20), 7},                       // vertical gap
		{NewRect(13, 14, 20, 20), 5},                      // diagonal 3-4-5
		{NewRect(-20, -20, -10, -10), math.Hypot(10, 10)}, // diagonal corner
	}
	for _, c := range cases {
		if got := a.Dist(c.b); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Dist(%v) = %g, want %g", c.b, got, c.want)
		}
	}
}

func TestDistSymmetric(t *testing.T) {
	f := func(ax0, ay0, aw, ah, bx0, by0, bw, bh uint8) bool {
		a := RectWH(int(ax0), int(ay0), int(aw%50)+1, int(ah%50)+1)
		b := RectWH(int(bx0), int(by0), int(bw%50)+1, int(bh%50)+1)
		return a.Dist(b) == b.Dist(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistTriangleLowerBound(t *testing.T) {
	// Edge-to-edge distance is never larger than center distance.
	f := func(ax0, ay0, aw, ah, bx0, by0, bw, bh uint8) bool {
		a := RectWH(int(ax0), int(ay0), int(aw%50)+1, int(ah%50)+1)
		b := RectWH(int(bx0), int(by0), int(bw%50)+1, int(bh%50)+1)
		return a.Dist(b) <= a.CenterDist(b)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUnionContainsBoth(t *testing.T) {
	f := func(ax0, ay0, aw, ah, bx0, by0, bw, bh uint8) bool {
		a := RectWH(int(ax0), int(ay0), int(aw)+1, int(ah)+1)
		b := RectWH(int(bx0), int(by0), int(bw)+1, int(bh)+1)
		u := a.Union(b)
		return u.Overlaps(a) && u.Overlaps(b) &&
			u.Contains(Point{a.X0, a.Y0}) && u.Contains(Point{a.X1, a.Y1}) &&
			u.Contains(Point{b.X0, b.Y0}) && u.Contains(Point{b.X1, b.Y1})
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBoundingBox(t *testing.T) {
	if _, ok := BoundingBox(nil); ok {
		t.Fatal("empty input must report !ok")
	}
	bb, ok := BoundingBox([]Rect{NewRect(0, 0, 5, 5), NewRect(10, -3, 12, 2)})
	if !ok || bb != (Rect{0, -3, 12, 5}) {
		t.Fatalf("bb = %v ok=%v", bb, ok)
	}
}

func TestPointOps(t *testing.T) {
	p := Point{1, 2}
	if p.Add(Point{3, 4}) != (Point{4, 6}) {
		t.Error("Add failed")
	}
	if p.Sub(Point{3, 4}) != (Point{-2, -2}) {
		t.Error("Sub failed")
	}
	if d := (Point{0, 0}).Dist(Point{3, 4}); d != 5 {
		t.Errorf("Dist = %g", d)
	}
}

func TestPolygonArea(t *testing.T) {
	sq := Polygon{Pts: []Point{{0, 0}, {10, 0}, {10, 10}, {0, 10}}}
	if a := sq.Area(); a != 100 {
		t.Fatalf("square area = %g", a)
	}
	// L-shape: 10x10 square minus 5x5 notch = 75.
	l := Polygon{Pts: []Point{{0, 0}, {10, 0}, {10, 5}, {5, 5}, {5, 10}, {0, 10}}}
	if a := l.Area(); a != 75 {
		t.Fatalf("L area = %g", a)
	}
	if (Polygon{Pts: []Point{{0, 0}, {1, 1}}}).Area() != 0 {
		t.Fatal("degenerate polygon area must be 0")
	}
}

func TestPolygonBBox(t *testing.T) {
	pg := Polygon{Pts: []Point{{2, 3}, {-1, 7}, {5, 0}}}
	bb, ok := pg.BBox()
	if !ok || bb != (Rect{-1, 0, 5, 7}) {
		t.Fatalf("bbox = %v ok=%v", bb, ok)
	}
	if _, ok := (Polygon{}).BBox(); ok {
		t.Fatal("empty polygon must report !ok")
	}
}

func TestRectString(t *testing.T) {
	if s := NewRect(1, 2, 3, 4).String(); s == "" {
		t.Fatal("empty String()")
	}
	if s := (Point{1, 2}).String(); s != "(1,2)" {
		t.Fatalf("point string = %q", s)
	}
}
