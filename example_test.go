package ldmo_test

import (
	"fmt"

	"ldmo"
)

// ExampleCell shows looking up a library cell.
func ExampleCell() {
	cell, err := ldmo.Cell("NAND3_X2")
	if err != nil {
		panic(err)
	}
	fmt.Println(cell.Name, len(cell.Patterns), "patterns in a",
		cell.Window.W(), "nm tile")
	// Output: NAND3_X2 7 patterns in a 544 nm tile
}

// ExampleGenerateDecompositions shows the MST + n-wise candidate set of a
// cell: a handful of canonical mask assignments instead of the 2^(n-1)
// exhaustive space.
func ExampleGenerateDecompositions() {
	cell, err := ldmo.Cell("NAND3_X2")
	if err != nil {
		panic(err)
	}
	cands, err := ldmo.GenerateDecompositions(cell)
	if err != nil {
		panic(err)
	}
	fmt.Println(len(cands), "candidates out of", 1<<(len(cell.Patterns)-1), "legal-or-not assignments")
	for _, d := range cands {
		fmt.Println(d.Key())
	}
	// Output:
	// 4 candidates out of 64 legal-or-not assignments
	// 0100010
	// 0101101
	// 0100101
	// 0101010
}

// ExampleCellNames lists the Table I suite.
func ExampleCellNames() {
	names := ldmo.CellNames()
	fmt.Println(len(names), "cells, first:", names[0], "last:", names[len(names)-1])
	// Output: 13 cells, first: BUF_X1 last: DFF_X1
}
