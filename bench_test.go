// Benchmarks regenerating the paper's evaluation, one per table/figure, plus
// micro-benchmarks of the hot paths. Each benchmark iteration performs a
// bounded slice of the experiment (a cell, a flow run, a training step) so
// `go test -bench=.` finishes in minutes; the full tables are produced by
// cmd/ldmo-bench. All experiment benches run on the coarse (fast) raster.
package ldmo_test

import (
	"io"
	"sync"
	"testing"

	"ldmo"
	"ldmo/internal/baseline"
	"ldmo/internal/experiments"
	"ldmo/internal/ilt"
	"ldmo/internal/layout"
	"ldmo/internal/litho"
	"ldmo/internal/model"
	"ldmo/internal/sampling"
	"ldmo/internal/simclock"
)

var (
	predOnce sync.Once
	predVal  *model.Predictor
	predErr  error
)

// trainedPredictor trains the fast-mode predictor once per test binary.
func trainedPredictor(b *testing.B) *model.Predictor {
	b.Helper()
	predOnce.Do(func() {
		predVal, predErr = experiments.TrainPredictor(experiments.Options{Fast: true, Seed: 1})
	})
	if predErr != nil {
		b.Fatal(predErr)
	}
	return predVal
}

func fastILT() ilt.Config {
	cfg := ilt.DefaultConfig()
	cfg.Litho = litho.FastParams()
	return cfg
}

func mustCell(b *testing.B, name string) layout.Layout {
	b.Helper()
	l, err := layout.Cell(name)
	if err != nil {
		b.Fatal(err)
	}
	return l
}

// BenchmarkTable1OursFlow measures our flow (Table I "Ours" column) on one
// representative cell: candidate generation + CNN selection + ILT.
func BenchmarkTable1OursFlow(b *testing.B) {
	pred := trainedPredictor(b)
	cfg := ldmo.DefaultFlowConfig()
	cfg.ILT = fastILT()
	flow := ldmo.NewFlow(pred, cfg)
	cell := mustCell(b, "AOI211_X1")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := flow.Run(cell); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1TwoStageSpacing measures the [16]+[6] column.
func BenchmarkTable1TwoStageSpacing(b *testing.B) {
	cell := mustCell(b, "AOI211_X1")
	for i := 0; i < b.N; i++ {
		if _, err := baseline.TwoStage("spacing", cell, fastILT(), simclock.DefaultModel()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1TwoStageRelaxation measures the [17]+[6] column.
func BenchmarkTable1TwoStageRelaxation(b *testing.B) {
	cell := mustCell(b, "AOI211_X1")
	for i := 0; i < b.N; i++ {
		if _, err := baseline.TwoStage("relaxation", cell, fastILT(), simclock.DefaultModel()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1UnifiedGreedy measures the [10] column (greedy pruning on
// intermediate printability).
func BenchmarkTable1UnifiedGreedy(b *testing.B) {
	cell := mustCell(b, "AOI211_X1")
	gc := baseline.DefaultGreedyConfig()
	for i := 0; i < b.N; i++ {
		if _, _, err := baseline.UnifiedGreedy(cell, fastILT(), gc, simclock.DefaultModel()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig1bTrajectories measures the convergence-trace experiment.
func BenchmarkFig1bTrajectories(b *testing.B) {
	opt := experiments.Options{Fast: true, Seed: 1}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig1b(opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig1cBreakdown measures one unified-greedy run with the DS/MO
// accounting of Fig. 1(c).
func BenchmarkFig1cBreakdown(b *testing.B) {
	cell := mustCell(b, "NAND3_X2")
	gc := baseline.DefaultGreedyConfig()
	for i := 0; i < b.N; i++ {
		r, _, err := baseline.UnifiedGreedy(cell, fastILT(), gc, simclock.DefaultModel())
		if err != nil {
			b.Fatal(err)
		}
		if r.DSSeconds <= 0 {
			b.Fatal("no DS accounting")
		}
	}
}

// BenchmarkFig7Cell measures one Fig. 7 cell comparison (ours vs ICCAD'17,
// no image output).
func BenchmarkFig7Cell(b *testing.B) {
	pred := trainedPredictor(b)
	opt := experiments.Options{Fast: true, Seed: 1, Predictor: pred}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig7(pred, opt, ""); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8LabelAndTrain measures the Fig. 8 unit of work: labeling one
// layout's sampled decompositions and taking gradient steps on them.
func BenchmarkFig8LabelAndTrain(b *testing.B) {
	sc := sampling.DefaultConfig()
	cell := mustCell(b, "NAND3_X2")
	for i := 0; i < b.N; i++ {
		ds, _, err := sampling.BuildDataset([]layout.Layout{cell}, sc, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		pred, err := model.New(model.TinyConfig())
		if err != nil {
			b.Fatal(err)
		}
		tc := model.DefaultTrainConfig()
		tc.Epochs = 1
		if _, err := pred.Train(ds, tc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkILTFullRun measures one full 29-iteration mask optimization on
// the default 4nm raster — the core physical workload of every experiment.
func BenchmarkILTFullRun(b *testing.B) {
	cell := mustCell(b, "NAND3_X2")
	cands, err := ldmo.GenerateDecompositions(cell)
	if err != nil {
		b.Fatal(err)
	}
	cfg := ilt.DefaultConfig()
	cfg.AbortOnViolation = false
	opt, err := ilt.NewOptimizer(cell, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt.Run(cands[0])
	}
}

// BenchmarkPredictorInference measures one CNN printability prediction.
func BenchmarkPredictorInference(b *testing.B) {
	pred := trainedPredictor(b)
	cell := mustCell(b, "AOI211_X1")
	cands, err := ldmo.GenerateDecompositions(cell)
	if err != nil {
		b.Fatal(err)
	}
	img := cands[0].GrayImage(4, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pred.Predict(img)
	}
}

// BenchmarkDecompositionGeneration measures MST + n-wise candidate
// enumeration for the largest library cell.
func BenchmarkDecompositionGeneration(b *testing.B) {
	cell := mustCell(b, "DFF_X1")
	for i := 0; i < b.N; i++ {
		if _, err := ldmo.GenerateDecompositions(cell); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSIFTLayoutDistance measures the layout-similarity computation of
// the sampling pipeline.
func BenchmarkSIFTLayoutDistance(b *testing.B) {
	pool, err := ldmo.GenerateLayouts(3, 2)
	if err != nil {
		b.Fatal(err)
	}
	sc := sampling.DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sampling.SelectLayouts(pool, sc); err != nil {
			b.Fatal(err)
		}
	}
}
